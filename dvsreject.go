// Package dvsreject is an energy-efficient real-time task scheduler with
// task rejection for DVS (dynamic voltage scaling) processors — a
// reproduction of "Energy-Efficient Real-Time Task Scheduling with Task
// Rejection" (Chen, Kuo, Yang, King; DATE 2007).
//
// Given frame-based (or periodic) real-time tasks with worst-case execution
// cycles and per-task rejection penalties, the library decides which tasks
// to admit and at which speeds to run them so that all admitted tasks meet
// the common deadline and the total of execution energy plus rejection
// penalties is minimized. The admission problem is NP-hard; the library
// ships two exact solvers (branch-and-bound, pseudo-polynomial DP), a
// capacity-rounding approximation scheme with an accuracy knob, and fast
// greedy heuristics, together with the DVS power/speed substrate (convex
// power models, critical speed, discrete speed levels, dormant-mode
// accounting) and an EDF simulator to validate produced schedules.
//
// # Quick start
//
//	proc := dvsreject.IdealProcessor(1.0)                  // smax = 1, P(s) = s³
//	set := dvsreject.TaskSet{
//		Deadline: 10,
//		Tasks: []dvsreject.Task{
//			{ID: 1, Cycles: 4, Penalty: 1.0},
//			{ID: 2, Cycles: 4, Penalty: 0.2},
//		},
//	}
//	in, err := dvsreject.NewInstance(set, proc)
//	// handle err
//	sol, err := dvsreject.DP{}.Solve(in)
//	// sol.Accepted, sol.Rejected, sol.Energy, sol.Penalty, sol.Cost
//
// See the examples/ directory for runnable scenarios and DESIGN.md for the
// system inventory.
package dvsreject

import (
	"dvsreject/internal/core"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"

	// Registers the "ANYTIME" island-search solver with the registry so
	// SolverByName resolves it.
	_ "dvsreject/internal/anytime"
)

// Core model types, re-exported from the internal packages so downstream
// users need only import dvsreject.
type (
	// Task is one frame-based real-time task (cycles, rejection penalty,
	// optional power coefficient).
	Task = task.Task
	// TaskSet is a frame-based task set with a common deadline.
	TaskSet = task.Set
	// PeriodicTask is one periodic task with an implicit deadline.
	PeriodicTask = task.Periodic
	// PeriodicSet is a set of periodic tasks under EDF.
	PeriodicSet = task.PeriodicSet
	// Processor describes a DVS processor (power model, speed range or
	// discrete levels, dormant-mode capability).
	Processor = speed.Proc
	// PowerModel is the polynomial power model P(s) = Pind + Coeff·s^Alpha.
	PowerModel = power.Polynomial
	// LevelSet is a discrete speed ladder for non-ideal processors.
	LevelSet = power.LevelSet

	// Instance is a solvable frame-based rejection problem.
	Instance = core.Instance
	// Solution is a solved instance: admission decision, speed assignment
	// and cost breakdown.
	Solution = core.Solution
	// Solver is one admission/scheduling algorithm.
	Solver = core.Solver
	// PeriodicInstance is a periodic rejection problem.
	PeriodicInstance = core.PeriodicInstance
	// PeriodicSolution is a solved periodic instance.
	PeriodicSolution = core.PeriodicSolution
	// SubsetSum is the NP-hardness reduction gadget.
	SubsetSum = core.SubsetSum
	// FrontierPoint is one Pareto-optimal energy/penalty trade.
	FrontierPoint = core.FrontierPoint
)

// ParetoFrontier computes the exact energy-versus-penalty Pareto frontier
// of a homogeneous instance (one DP pass). The overall optimum is the
// frontier point with minimum Cost.
func ParetoFrontier(in Instance) ([]FrontierPoint, error) {
	return core.ParetoFrontier(in)
}

// BreakEven computes the penalty threshold at which a task enters the
// optimal admission — the price of its SLA slot. See core.BreakEven.
func BreakEven(in Instance, taskID int, tol float64) (float64, error) {
	return core.BreakEven(in, taskID, tol)
}

// Solvers, re-exported.
type (
	// Exhaustive is the exact branch-and-bound reference solver (n ≲ 24).
	Exhaustive = core.Exhaustive
	// DP is the exact pseudo-polynomial dynamic program.
	DP = core.DP
	// ApproxDP is the (1+ε)-style capacity-rounding approximation scheme.
	ApproxDP = core.ApproxDP
	// ApproxDPPenalty is the penalty-axis scaling scheme whose table size
	// is independent of cycle magnitudes (the FPTAS shape).
	ApproxDPPenalty = core.ApproxDPPenalty
	// GreedyDensity is the single-pass penalty-density heuristic.
	GreedyDensity = core.GreedyDensity
	// GreedyMarginal is GreedyDensity plus toggle/swap local search.
	GreedyMarginal = core.GreedyMarginal
	// AcceptAll is the energy-oblivious admit-everything baseline.
	AcceptAll = core.AcceptAll
	// RejectAll is the degenerate reject-everything anchor.
	RejectAll = core.RejectAll
	// RandomAdmission is the seeded random-permutation baseline.
	RandomAdmission = core.RandomAdmission
	// Rounding is the relaxation-and-round solver (E-GREEDY style).
	Rounding = core.Rounding

	// SparseMode selects the DP row representation (see DP.Sparse).
	SparseMode = core.SparseMode
)

// DP.Sparse row-representation modes. SparseAuto (the zero value) keeps
// grids the dense state budget admits on the dense kernel and routes
// larger ones to the sparse breakpoint rows; SparseOn and SparseOff
// force one representation. All three are bit-identical where both
// kernels can solve.
const (
	SparseAuto = core.SparseAuto
	SparseOn   = core.SparseOn
	SparseOff  = core.SparseOff
)

// NewInstance validates and bundles a task set with a processor.
func NewInstance(set TaskSet, proc Processor) (Instance, error) {
	in := Instance{Tasks: set, Proc: proc}
	if err := in.Validate(); err != nil {
		return Instance{}, err
	}
	return in, nil
}

// Evaluate costs a specific admission decision exactly (optimal speed
// assignment for the accepted IDs plus rejection penalties).
func Evaluate(in Instance, accepted []int) (Solution, error) {
	return core.Evaluate(in, accepted)
}

// SolvePeriodic reduces a periodic instance to its equivalent frame
// instance (hyper-period reduction), solves it, and maps back.
func SolvePeriodic(s Solver, pi PeriodicInstance) (PeriodicSolution, error) {
	return core.SolvePeriodic(s, pi)
}

// IdealProcessor returns a continuous-speed, leakage-free processor with
// the cubic power model P(s) = s³ and the given top speed.
func IdealProcessor(smax float64) Processor {
	return Processor{Model: power.Cubic(), SMax: smax}
}

// XScaleProcessor returns the Intel XScale model (P(s) = 0.08 + 1.52·s³,
// speeds normalized to the 1 GHz top level). With discrete = true the five
// hardware frequency levels are enforced; otherwise the speed spectrum is
// continuous. esw ≥ 0 enables the dormant mode with the given
// shutdown/wakeup energy overhead; pass a negative esw for a
// dormant-disable processor.
func XScaleProcessor(discrete bool, esw float64) Processor {
	p := Processor{Model: power.XScale(), SMax: 1}
	if discrete {
		p.Levels = power.XScaleLevels()
	}
	if esw >= 0 {
		p.DormantEnable = true
		p.Esw = esw
	}
	return p
}

// StandardSolvers returns the full lineup the experiment suite compares,
// with the given seed for the randomized baseline and ε for the
// approximation scheme.
func StandardSolvers(seed int64, eps float64) []Solver {
	return []Solver{
		DP{},
		ApproxDP{Eps: eps},
		GreedyMarginal{},
		GreedyDensity{},
		AcceptAll{},
		RandomAdmission{Seed: seed},
	}
}

// SolverSpec parameterizes SolverByNameSpec: approximation ε, randomized
// seed, and the parallel-search worker bound. The zero value reproduces
// SolverByName's defaults (ε = 0.1, seed = 1, solver-default workers).
type SolverSpec = core.SolverSpec

// SolverByName resolves the experiment-table names ("DP", "DP-SPARSE",
// "GREEDY", "S-GREEDY", "ROUNDING", "ACCEPT-ALL", "REJECT-ALL", "RAND",
// "OPT", "APPROX-V", "APPROX", "ANYTIME") to a solver. APPROX takes
// ε = 0.1. ANYTIME is the island-parallel Pareto search
// (internal/anytime): at the registry's fixed generation budget it is
// bit-deterministic for a given Seed across any Workers count — the same
// contract DP-SPARSE makes versus dense DP — while wall-clock-budgeted
// runs (Budget/SolveUntil on the underlying solver) trade that
// reproducibility for a hard deadline.
func SolverByName(name string) (Solver, error) {
	return core.NewSolver(name, core.SolverSpec{})
}

// SolverByNameSpec is SolverByName with the construction knobs exposed —
// notably Workers, which bounds the parallel fan-out of the searching
// solvers (OPT, RAND).
func SolverByNameSpec(name string, spec SolverSpec) (Solver, error) {
	return core.NewSolver(name, spec)
}
