GO ?= go

.PHONY: all build vet test test-short cover bench bench-json bench-diff serve-smoke cluster-smoke fuzz verifyfuzz fuzz-corpus experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l .

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# BENCH_serve.json is the -suite comparison matrix: single-node HTTP
# baseline, 3-node cluster over HTTP and the binary wire protocol, and a
# coalescing burst run — one {"runs": [...]} report with per-shard rows.
bench-json:
	$(GO) run ./cmd/bench -o BENCH_core.json
	$(GO) run ./cmd/loadgen -suite -duration 5s -conns 4 -o BENCH_serve.json

# Re-measure and diff against the committed baselines; fails on any core
# case more than 15% slower (tune with e.g. BENCH_DIFF_FLAGS="-max-regress 25")
# or doubling its allocs/op, or any serve suite run whose throughput
# dropped more than 30% (SERVE_DIFF_FLAGS="-max-regress 50").
bench-diff:
	$(GO) run ./cmd/bench -compare BENCH_core.json -max-allocs-regress 100 -o /tmp/bench-new.json $(BENCH_DIFF_FLAGS)
	$(GO) run ./cmd/loadgen -suite -duration 2s -conns 4 -compare BENCH_serve.json -o /tmp/loadgen-new.json $(SERVE_DIFF_FLAGS)

serve-smoke:
	$(GO) run ./cmd/loadgen -duration 2s -conns 4 -check

# 3-shard cluster under -race over both protocols, every response checked
# bit-identically against a direct solve.
cluster-smoke:
	$(GO) run -race ./cmd/loadgen -nodes 3 -proto http -duration 2s -conns 4 -instances 16 -n 30 -rotate 500ms -check
	$(GO) run -race ./cmd/loadgen -nodes 3 -proto wire -duration 2s -conns 4 -instances 16 -n 30 -rotate 500ms -check

fuzz:
	$(GO) test ./internal/task/ -fuzz FuzzReadJSON -fuzztime 30s
	$(GO) test ./internal/task/ -fuzz FuzzReadPeriodicJSON -fuzztime 30s
	$(GO) test ./internal/core/ -run '^$$' -fuzz '^FuzzSolverInvariants$$' -fuzztime 60s
	$(GO) test ./internal/core/ -run '^$$' -fuzz '^FuzzMetamorphic$$' -fuzztime 60s
	$(GO) test ./internal/core/ -run '^$$' -fuzz '^FuzzDeltaSolve$$' -fuzztime 60s
	$(GO) test ./internal/core/ -run '^$$' -fuzz '^FuzzSparseDense$$' -fuzztime 60s
	$(GO) test ./internal/serve/ -run '^$$' -fuzz '^FuzzServeFingerprint$$' -fuzztime 60s
	$(GO) test ./internal/wire/ -run '^$$' -fuzz '^FuzzWireFrame$$' -fuzztime 60s
	$(GO) test ./internal/anytime/ -run '^$$' -fuzz '^FuzzAnytimeFront$$' -fuzztime 60s
	$(GO) test ./internal/multiproc/ -run '^$$' -fuzz '^FuzzHeteroPartition$$' -fuzztime 60s

# Randomized oracle/metamorphic soak through the solver registry; on
# failure it shrinks the instance and writes a repro (see TESTING.md).
verifyfuzz:
	$(GO) run ./cmd/verifyfuzz -duration 60s

# Regenerate the committed seed corpora from verify.SeedInstances().
fuzz-corpus:
	$(GO) run ./cmd/verifyfuzz -emit-corpus .

experiments:
	$(GO) run ./cmd/experiments

examples:
	@for e in quickstart admission xscale leakage periodic online reclaim multiproc; do \
		echo "=== examples/$$e ==="; \
		$(GO) run ./examples/$$e; \
		echo; \
	done

clean:
	$(GO) clean ./...
