package dvsreject

import (
	"math"
	"testing"
)

func TestFacadeMultiproc(t *testing.T) {
	in := MultiprocInstance{
		Tasks: TaskSet{Deadline: 10, Tasks: []Task{
			{ID: 1, Cycles: 5, Penalty: 100},
			{ID: 2, Cycles: 5, Penalty: 100},
		}},
		Proc: IdealProcessor(1),
		M:    2,
	}
	sol, err := (LTFRejectLS{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// Convexity: one 5-cycle task per processor, E = 2·(0.5²·5) = 2.5.
	if math.Abs(sol.Cost-2.5) > 1e-9 {
		t.Errorf("cost = %v, want 2.5", sol.Cost)
	}
	opt, err := (MultiprocExhaustive{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt.Cost-sol.Cost) > 1e-9 {
		t.Errorf("heuristic %v != OPT %v on the trivial split", sol.Cost, opt.Cost)
	}
}

func TestFacadeOnline(t *testing.T) {
	jobs := []OnlineJob{
		{ID: 1, Arrival: 0, Deadline: 10, Cycles: 5, Penalty: 2},
	}
	r, err := SimulateOnline(jobs, IdealProcessor(1), MarginalCostPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Accepted) != 1 || r.Misses != 0 {
		t.Errorf("online result = %+v", r)
	}
	off, err := OfflineOptimal(jobs, IdealProcessor(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(off.Cost-r.Cost) > 1e-9 {
		t.Errorf("single-job online %v != offline %v", r.Cost, off.Cost)
	}
}

func TestFacadeEDFAndYDS(t *testing.T) {
	jobs := []Job{
		{TaskID: 1, Release: 0, Deadline: 10, Cycles: 4},
		{TaskID: 2, Release: 4, Deadline: 6, Cycles: 2},
	}
	sched, err := ComputeYDS(jobs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := SimulateEDF(jobs, sched.Profile())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Errorf("YDS schedule infeasible under EDF: %+v", r)
	}
}

func TestFacadeReclaim(t *testing.T) {
	tasks := []ReclaimTask{{ID: 1, WCET: 4, Actual: 2}, {ID: 2, WCET: 4, Actual: 2}}
	var last float64
	for _, pol := range []ReclaimPolicy{ReclaimStatic, ReclaimCycleConserving, ReclaimOracle} {
		tr, err := RunReclaim(tasks, 10, IdealProcessor(1).Model, 1, pol)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if last != 0 && tr.Energy > last+1e-9 {
			t.Errorf("%v energy %v not ≤ previous %v", pol, tr.Energy, last)
		}
		last = tr.Energy
	}
}

func TestFacadeIdleModes(t *testing.T) {
	jobs := []Job{
		{TaskID: 1, Release: 0, Deadline: 20, Cycles: 4},
		{TaskID: 2, Release: 10, Deadline: 20, Cycles: 4},
	}
	proc := XScaleProcessor(false, 0.5)
	asap, alap, err := CompareIdleModes(jobs, 1, 20, proc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(asap.TotalIdle-alap.TotalIdle) > 1e-9 {
		t.Errorf("idle mismatch: %v vs %v", asap.TotalIdle, alap.TotalIdle)
	}
	if alap.IdleEnergy > asap.IdleEnergy+1e-9 {
		t.Errorf("ALAP (%v) worse than ASAP (%v) on the staggered instance", alap.IdleEnergy, asap.IdleEnergy)
	}
	if ExecASAP.String() != "ASAP" || ExecALAP.String() != "ALAP(PROC)" {
		t.Error("mode names changed")
	}
}

func TestFacadeParetoFrontier(t *testing.T) {
	in, err := NewInstance(TaskSet{
		Deadline: 10,
		Tasks:    []Task{{ID: 1, Cycles: 4, Penalty: 1}, {ID: 2, Cycles: 4, Penalty: 2}},
	}, IdealProcessor(1))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := ParetoFrontier(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr) != 3 {
		t.Fatalf("frontier = %+v, want 3 points", fr)
	}
	// The minimum-cost point must match the DP optimum.
	opt, err := (DP{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	best := fr[0].Cost
	for _, p := range fr {
		if p.Cost < best {
			best = p.Cost
		}
	}
	if math.Abs(best-opt.Cost) > 1e-9 {
		t.Errorf("frontier best %v != optimum %v", best, opt.Cost)
	}
}
