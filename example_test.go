package dvsreject_test

import (
	"fmt"

	"dvsreject"
)

// The core flow: build an instance, solve it exactly, read the decision.
func ExampleDP_Solve() {
	in, err := dvsreject.NewInstance(dvsreject.TaskSet{
		Deadline: 10,
		Tasks: []dvsreject.Task{
			{ID: 1, Cycles: 4, Penalty: 2.0},
			{ID: 2, Cycles: 4, Penalty: 0.3},
		},
	}, dvsreject.IdealProcessor(1.0))
	if err != nil {
		panic(err)
	}
	sol, err := dvsreject.DP{}.Solve(in)
	if err != nil {
		panic(err)
	}
	fmt.Printf("accepted %v, rejected %v\n", sol.Accepted, sol.Rejected)
	fmt.Printf("energy %.2f + penalty %.2f = cost %.2f\n", sol.Energy, sol.Penalty, sol.Cost)
	// Output:
	// accepted [1], rejected [2]
	// energy 0.64 + penalty 0.30 = cost 0.94
}

// Evaluating a caller-chosen admission decision.
func ExampleEvaluate() {
	in, _ := dvsreject.NewInstance(dvsreject.TaskSet{
		Deadline: 10,
		Tasks: []dvsreject.Task{
			{ID: 1, Cycles: 4, Penalty: 2.0},
			{ID: 2, Cycles: 4, Penalty: 0.3},
		},
	}, dvsreject.IdealProcessor(1.0))
	sol, err := dvsreject.Evaluate(in, []int{1, 2}) // force-accept both
	if err != nil {
		panic(err)
	}
	// W = 8 over D = 10: speed 0.8, energy 0.8²·8.
	fmt.Printf("speed %.1f, energy %.2f\n", sol.Assignment.LoSpeed, sol.Energy)
	// Output:
	// speed 0.8, energy 5.12
}

// Periodic tasks reduce to the frame problem over the hyper-period.
func ExampleSolvePeriodic() {
	pi := dvsreject.PeriodicInstance{
		Tasks: dvsreject.PeriodicSet{Tasks: []dvsreject.PeriodicTask{
			{ID: 1, Cycles: 1, Period: 2, Penalty: 10},
			{ID: 2, Cycles: 2, Period: 5, Penalty: 10},
		}},
		Proc: dvsreject.IdealProcessor(1.0),
	}
	sol, err := dvsreject.SolvePeriodic(dvsreject.DP{}, pi)
	if err != nil {
		panic(err)
	}
	fmt.Printf("hyper-period %d, speed %.2f, accepted %v\n", sol.Hyper, sol.Speed, sol.Accepted)
	// Output:
	// hyper-period 10, speed 0.90, accepted [1 2]
}

// Overload forces rejection even at infinite penalties.
func ExampleGreedyMarginal_Solve() {
	in, _ := dvsreject.NewInstance(dvsreject.TaskSet{
		Deadline: 10, // capacity: 10 cycles at smax = 1
		Tasks: []dvsreject.Task{
			{ID: 1, Cycles: 7, Penalty: 100},
			{ID: 2, Cycles: 7, Penalty: 1},
		},
	}, dvsreject.IdealProcessor(1.0))
	sol, err := dvsreject.GreedyMarginal{}.Solve(in)
	if err != nil {
		panic(err)
	}
	fmt.Printf("accepted %v (capacity admits only one)\n", sol.Accepted)
	// Output:
	// accepted [1] (capacity admits only one)
}

// The NP-hardness gadget doubles as a subset-sum solver.
func ExampleSubsetSum() {
	ss := dvsreject.SubsetSum{Items: []int64{3, 5, 7}, Target: 8}
	in, err := ss.Reduce()
	if err != nil {
		panic(err)
	}
	opt, err := dvsreject.DP{}.Solve(in)
	if err != nil {
		panic(err)
	}
	fmt.Println("subset summing to 8 exists:", ss.Decode(opt))
	// Output:
	// subset summing to 8 exists: true
}

// Discrete-speed processors split execution between adjacent levels.
func ExampleXScaleProcessor() {
	proc := dvsreject.XScaleProcessor(true, -1) // 5-level ladder, no dormant mode
	in, _ := dvsreject.NewInstance(dvsreject.TaskSet{
		Deadline: 10,
		Tasks:    []dvsreject.Task{{ID: 1, Cycles: 7, Penalty: 100}},
	}, proc)
	sol, err := dvsreject.DP{}.Solve(in)
	if err != nil {
		panic(err)
	}
	// Ideal speed 0.7 sits between the 0.6 and 0.8 levels.
	fmt.Printf("run %.0f time units at %.1f, then %.0f at %.1f\n",
		sol.Assignment.LoTime, sol.Assignment.LoSpeed,
		sol.Assignment.HiTime, sol.Assignment.HiSpeed)
	// Output:
	// run 5 time units at 0.6, then 5 at 0.8
}

// The exact energy/penalty trade curve, from one DP pass.
func ExampleParetoFrontier() {
	in, _ := dvsreject.NewInstance(dvsreject.TaskSet{
		Deadline: 10,
		Tasks: []dvsreject.Task{
			{ID: 1, Cycles: 4, Penalty: 1.0},
			{ID: 2, Cycles: 4, Penalty: 2.0},
		},
	}, dvsreject.IdealProcessor(1.0))
	frontier, err := dvsreject.ParetoFrontier(in)
	if err != nil {
		panic(err)
	}
	for _, p := range frontier {
		fmt.Printf("accept %d cycles: energy %.2f, penalties %.2f\n", p.Workload, p.Energy, p.Penalty)
	}
	// Output:
	// accept 0 cycles: energy 0.00, penalties 3.00
	// accept 4 cycles: energy 0.64, penalties 1.00
	// accept 8 cycles: energy 5.12, penalties 0.00
}

// Pricing a task's admission: the penalty at which it enters the optimal
// schedule.
func ExampleBreakEven() {
	in, _ := dvsreject.NewInstance(dvsreject.TaskSet{
		Deadline: 10,
		Tasks:    []dvsreject.Task{{ID: 1, Cycles: 4, Penalty: 0.1}},
	}, dvsreject.IdealProcessor(1.0))
	threshold, err := dvsreject.BreakEven(in, 1, 1e-9)
	if err != nil {
		panic(err)
	}
	// The task needs E(4) = 4³/10² = 0.64 of energy; below that penalty,
	// rejection is cheaper.
	fmt.Printf("admission threshold ≈ %.2f\n", threshold)
	// Output:
	// admission threshold ≈ 0.64
}
