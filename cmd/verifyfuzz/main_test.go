package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dvsreject/internal/verify"
)

// TestWriteCorpora pins the -emit-corpus output: one file per canonical
// seed per fuzz target, in the go-fuzz v1 corpus format, each decoding
// back to a valid instance.
func TestWriteCorpora(t *testing.T) {
	root := t.TempDir()
	if err := writeCorpora(root); err != nil {
		t.Fatal(err)
	}
	const prefix = "go test fuzz v1\n[]byte("
	for _, dir := range corpusTargets {
		for _, s := range verify.SeedInstances() {
			path := filepath.Join(root, dir, s.Name)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing corpus file: %v", err)
			}
			text := string(data)
			if !strings.HasPrefix(text, prefix) {
				t.Fatalf("%s: not in go-fuzz v1 format: %q", path, text)
			}
			rest := strings.TrimPrefix(text, prefix)
			quoted, extras, ok := strings.Cut(rest, ")\n")
			if !ok {
				t.Fatalf("%s: instance arg not terminated: %q", path, text)
			}
			if extras != corpusExtras[dir] {
				t.Fatalf("%s: extra fuzz args = %q, want %q", path, extras, corpusExtras[dir])
			}
			payload, err := strconv.Unquote(quoted)
			if err != nil {
				t.Fatalf("%s: cannot unquote corpus payload: %v", path, err)
			}
			in, ok := verify.DecodeInstance([]byte(payload))
			if !ok {
				t.Fatalf("%s: corpus payload does not decode", path)
			}
			if err := in.Validate(); err != nil {
				t.Fatalf("%s: decoded instance invalid: %v", path, err)
			}
		}
	}
}
