// Command verifyfuzz soaks the solvers against the shared verification
// oracles: it draws random instances across every processor flavour, runs
// the full invariant sweep (and optionally the metamorphic battery) on
// each, and on the first failure shrinks the instance to a minimal repro,
// writes it as JSON plus a paste-ready Go test case, and exits non-zero.
//
// CI runs it as a short smoke (-duration 60s); the nightly job runs it
// long. -emit-corpus regenerates the committed seed corpora for the
// native Go fuzz targets from the canonical seed list.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dvsreject/internal/core"
	"dvsreject/internal/verify"
)

func main() {
	var (
		duration    = flag.Duration("duration", 60*time.Second, "how long to soak")
		seed        = flag.Int64("seed", 1, "base RNG seed (worker w uses seed + w·1000003)")
		solvers     = flag.String("solvers", "", "comma-separated registry names to sweep (default: all)")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel sweep goroutines")
		metamorphic = flag.Bool("metamorphic", true, "also run the metamorphic battery on each draw")
		out         = flag.String("out", "testdata/shrunk", "directory for failure repros")
		emitCorpus  = flag.String("emit-corpus", "", "write the canonical fuzz seed corpora under this repo root and exit")
	)
	flag.Parse()

	if *emitCorpus != "" {
		if err := writeCorpora(*emitCorpus); err != nil {
			fmt.Fprintln(os.Stderr, "verifyfuzz:", err)
			os.Exit(1)
		}
		return
	}

	opt := verify.Options{}
	if *solvers != "" {
		opt.Solvers = strings.Split(*solvers, ",")
	}

	type failure struct {
		in   core.Instance
		meta bool // failed in the metamorphic battery, not the sweep
		err  error
	}
	var (
		firstMu sync.Mutex
		first   *failure
		checked atomic.Int64
		stop    = make(chan struct{})
	)
	report := func(f failure) {
		firstMu.Lock()
		defer firstMu.Unlock()
		if first == nil {
			first = &f
			close(stop)
		}
	}

	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*1000003))
			for time.Now().Before(deadline) {
				select {
				case <-stop:
					return
				default:
				}
				in, _, err := verify.Draw(rng)
				if err != nil {
					report(failure{in: in, err: fmt.Errorf("draw: %w", err)})
					return
				}
				if err := verify.CheckInstance(in, opt); err != nil {
					report(failure{in: in, err: err})
					return
				}
				if *metamorphic {
					if err := verify.CheckMetamorphic(in, opt); err != nil {
						report(failure{in: in, meta: true, err: err})
						return
					}
				}
				checked.Add(1)
			}
		}(w)
	}
	wg.Wait()

	if first == nil {
		fmt.Printf("verifyfuzz: OK — %d instances swept in %v (%d workers, seed %d)\n",
			checked.Load(), duration.Round(time.Second), *workers, *seed)
		return
	}

	fmt.Fprintf(os.Stderr, "verifyfuzz: FAILURE after %d clean instances:\n%v\n", checked.Load(), first.err)
	check := func(c core.Instance) error { return verify.CheckInstance(c, opt) }
	if first.meta {
		check = func(c core.Instance) error { return verify.CheckMetamorphic(c, opt) }
	}
	small := verify.Shrink(first.in, func(c core.Instance) bool {
		return verify.SameFailure(check(c), first.err)
	})
	stamp := time.Now().UTC().Format("20060102-150405")
	path := filepath.Join(*out, fmt.Sprintf("verifyfuzz-%s.json", stamp))
	r := verify.NewRepro(small, first.err, "shrunk by cmd/verifyfuzz; see TESTING.md for the repro workflow")
	if err := verify.WriteRepro(path, r); err != nil {
		fmt.Fprintln(os.Stderr, "verifyfuzz: writing repro:", err)
	} else {
		fmt.Fprintf(os.Stderr, "\nshrunk repro (%d tasks) written to %s\n", len(small.Tasks.Tasks), path)
	}
	fmt.Fprintf(os.Stderr, "\npaste-ready test case:\n\n%s\n", verify.GoTestCase("VerifyfuzzRepro", small))
	os.Exit(1)
}

// corpusTargets lists each fuzz target's corpus directory. All targets
// share the canonical seed list; the codec ignores bytes a target does not
// use.
var corpusTargets = []string{
	"internal/core/testdata/fuzz/FuzzSolverInvariants",
	"internal/core/testdata/fuzz/FuzzMetamorphic",
	"internal/core/testdata/fuzz/FuzzSparseDense",
	"internal/serve/testdata/fuzz/FuzzServeFingerprint",
	"internal/anytime/testdata/fuzz/FuzzAnytimeFront",
}

// corpusExtras appends typed fuzz-parameter lines for targets whose
// signature goes beyond the instance bytes. FuzzAnytimeFront fuzzes a
// generation budget and a worker count on top of the instance.
var corpusExtras = map[string]string{
	"internal/anytime/testdata/fuzz/FuzzAnytimeFront": "byte('\\x10')\nbyte('\\x04')\n",
}

func writeCorpora(root string) error {
	for _, dir := range corpusTargets {
		full := filepath.Join(root, dir)
		if err := os.MkdirAll(full, 0o755); err != nil {
			return err
		}
		for _, s := range verify.SeedInstances() {
			data, ok := verify.EncodeInstance(s.In)
			if !ok {
				return fmt.Errorf("seed %q is not codec-representable", s.Name)
			}
			entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n%s", data, corpusExtras[dir])
			if err := os.WriteFile(filepath.Join(full, s.Name), []byte(entry), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", filepath.Join(dir, s.Name))
		}
	}
	return nil
}
