// Command rejectschedd is the long-running solve daemon: a batched,
// cache-fronted HTTP/JSON front end over the dvsreject solvers
// (internal/serve).
//
//	rejectschedd -addr :8080 -shards 16 -entries 256 -workers 0
//
// Endpoints:
//
//	POST /solve   one instance            → one solution
//	POST /batch   {"requests": [...]}     → positional solutions
//	GET  /stats   cache/coalescing counters
//	GET  /healthz liveness probe
//
// Profiling is off by default; -debug-addr starts a second listener that
// serves only net/http/pprof (GET /debug/pprof/...), kept off the service
// address so profiling endpoints are never exposed alongside the API:
//
//	rejectschedd -addr :8080 -debug-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// See README.md § Serving for the wire format.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dvsreject/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		shards    = flag.Int("shards", 16, "plan-cache shards (rounded up to a power of two)")
		entries   = flag.Int("entries", 256, "plan-cache entries per shard")
		workers   = flag.Int("workers", 0, "batch fan-out workers (0 = GOMAXPROCS)")
		quantum   = flag.Float64("quantum", 0, "fingerprint float quantization (0 = exact bits)")
		solver    = flag.String("solver", "DP", "default solver for requests that name none")
		debugAddr = flag.String("debug-addr", "", "separate listen address for /debug/pprof (empty = profiling disabled)")
	)
	flag.Parse()

	engine := serve.New(serve.Config{
		Shards:          *shards,
		EntriesPerShard: *entries,
		Workers:         *workers,
		Quantum:         *quantum,
		DefaultSolver:   *solver,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewHandler(engine),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	if *debugAddr != "" {
		// A dedicated mux: registering pprof on the service handler would
		// expose profiling to every client that can reach the API.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg := &http.Server{Addr: *debugAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() { errc <- dbg.ListenAndServe() }()
		log.Printf("pprof listening on %s", *debugAddr)
	}
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("rejectschedd listening on %s (default solver %s, %d×%d cache)",
		*addr, *solver, *shards, *entries)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		st := engine.Stats()
		log.Printf("shutdown: %d requests, %d cache hits, %d coalesced",
			st.Requests, st.Cache.Hits, st.Coalesced)
	}
}
