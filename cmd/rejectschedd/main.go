// Command rejectschedd is the long-running solve daemon: a batched,
// cache-fronted front end over the dvsreject solvers, serving HTTP/JSON
// (internal/serve) and optionally the binary wire protocol
// (internal/wire) side by side.
//
//	rejectschedd -addr :8080 -shards 16 -entries 256 -workers 0
//
// Endpoints:
//
//	POST /solve   one instance            → one solution
//	POST /batch   {"requests": [...]}     → positional solutions
//	GET  /stats   node counters (engine, admission, replication, wire)
//	GET  /healthz liveness probe
//
// Clustering: -wire-addr starts the binary-protocol listener and -peers
// lists every shard's wire address (including this node's). The peer
// list is the consistent-hash ring identity set — every shard and every
// routing client must be started with the same list. Cold solves are
// replicated to the key's next ring node, warming its cache
// (internal/cluster):
//
//	rejectschedd -addr :8080 -wire-addr 10.0.0.1:9090 \
//	    -peers 10.0.0.1:9090,10.0.0.2:9090,10.0.0.3:9090
//
// Overload shedding: -capacity bounds the estimated in-flight solver
// cost (µs); past it, requests whose rejection penalty is too small for
// the backlog are answered 429 + Retry-After — the paper's
// energy-vs-penalty rejection calculus applied to the serving tier.
//
// Anytime fallback: -anytime-budget 50ms arms the anytime Pareto tier
// (internal/anytime) for exact-DP requests. A solve whose estimated cost
// exceeds its timeout_ms, or that exhausts the DP state budget, is
// answered within the budget by the island search — the response carries
// "anytime": true plus a certified "gap" bound, and is never cached.
//
// Profiling is off by default; -debug-addr starts a second listener that
// serves only net/http/pprof (GET /debug/pprof/...), kept off the service
// address so profiling endpoints are never exposed alongside the API:
//
//	rejectschedd -addr :8080 -debug-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// See README.md § Serving for the wire formats.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dvsreject/internal/cluster"
	"dvsreject/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		wireAddr  = flag.String("wire-addr", "", "binary wire-protocol listen address (empty = wire protocol disabled)")
		peers     = flag.String("peers", "", "comma-separated wire addresses of every cluster shard, this one included (empty = standalone)")
		capacity  = flag.Float64("capacity", 0, "admission capacity in estimated in-flight solver µs (0 = no shedding)")
		slope     = flag.Float64("slope", 0, "overload shedding price in penalty per µs of cost per unit overload (0 = default 0.05)")
		shards    = flag.Int("shards", 16, "plan-cache shards (rounded up to a power of two)")
		entries   = flag.Int("entries", 256, "plan-cache entries per shard")
		workers   = flag.Int("workers", 0, "batch fan-out workers (0 = GOMAXPROCS)")
		quantum   = flag.Float64("quantum", 0, "fingerprint float quantization (0 = exact bits)")
		solver    = flag.String("solver", "DP", "default solver for requests that name none")
		anytime   = flag.Duration("anytime-budget", 0, "arm the anytime Pareto fallback with this per-solve wall budget: DP requests whose estimated cost exceeds their timeout, or that die on the DP state budget, get a best-effort front point with a certified gap bound instead of an error (0 = disabled)")
		debugAddr = flag.String("debug-addr", "", "separate listen address for /debug/pprof (empty = profiling disabled)")
	)
	flag.Parse()

	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}
	self := *wireAddr
	if len(peerList) > 0 {
		if self == "" {
			log.Fatal("rejectschedd: -peers requires -wire-addr (the ring identities are wire addresses)")
		}
		found := false
		for _, p := range peerList {
			if p == self {
				found = true
				break
			}
		}
		if !found {
			log.Fatalf("rejectschedd: -wire-addr %s is not in -peers %s", self, *peers)
		}
	} else if self != "" {
		peerList = []string{self}
	}

	node := cluster.NewNode(cluster.NodeConfig{
		Engine: serve.Config{
			Shards:          *shards,
			EntriesPerShard: *entries,
			Workers:         *workers,
			Quantum:         *quantum,
			DefaultSolver:   *solver,
			AnytimeBudget:   *anytime,
			EstimateCost:    cluster.EstimateCost,
		},
		Self:      self,
		Peers:     peerList,
		Admission: cluster.AdmissionConfig{Capacity: *capacity, Slope: *slope},
	})
	defer node.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           node.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	if *wireAddr != "" {
		ln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			log.Fatal(err)
		}
		go node.ServeWire(ln)
		log.Printf("wire protocol listening on %s (%d peers on the ring)", *wireAddr, len(peerList))
	}
	if *debugAddr != "" {
		// A dedicated mux: registering pprof on the service handler would
		// expose profiling to every client that can reach the API.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg := &http.Server{Addr: *debugAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() { errc <- dbg.ListenAndServe() }()
		log.Printf("pprof listening on %s", *debugAddr)
	}
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("rejectschedd listening on %s (default solver %s, %d×%d cache)",
		*addr, *solver, *shards, *entries)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		st := node.Stats()
		log.Printf("shutdown: %d requests, %d cache hits, %d coalesced, %d warmed, %d shed",
			st.Engine.Requests, st.Engine.Cache.Hits, st.Engine.Coalesced, st.Engine.Warmed, st.Admission.Shed)
	}
}
