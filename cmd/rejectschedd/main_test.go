package main

// Error-path coverage of the daemon surface, exercising the same wiring
// main builds (serve.New + serve.NewHandler): client errors must map to
// 400, solver rejections to 422, per-request deadline overruns to 504,
// an empty batch must round-trip, and /stats must reconcile with the
// traffic the test generated.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dvsreject/internal/serve"
)

// newTestServer mirrors main's engine construction with the default flags.
func newTestServer(t *testing.T) (*serve.Engine, *httptest.Server) {
	t.Helper()
	engine := serve.New(serve.Config{Shards: 16, EntriesPerShard: 256, DefaultSolver: "DP"})
	srv := httptest.NewServer(serve.NewHandler(engine))
	t.Cleanup(srv.Close)
	return engine, srv
}

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// smallInstance is a well-formed request body template.
func smallInstance(solver string) string {
	return fmt.Sprintf(`{"solver": %q, "deadline": 10, "smax": 1, "tasks": [
		{"id": 1, "cycles": 4, "penalty": 3},
		{"id": 2, "cycles": 7, "penalty": 1.5}
	]}`, solver)
}

func TestDaemonMalformedJSON(t *testing.T) {
	_, srv := newTestServer(t)
	if resp := post(t, srv.URL+"/solve", `{"deadline": `); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	if resp := post(t, srv.URL+"/batch", `[1, 2]`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("batch body of the wrong shape: status %d, want 400", resp.StatusCode)
	}
}

func TestDaemonUnknownSolver(t *testing.T) {
	_, srv := newTestServer(t)
	resp := post(t, srv.URL+"/solve", smallInstance("NOPE"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown solver: status %d, want 422", resp.StatusCode)
	}
	var body serve.WireResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error == "" {
		t.Error("422 response carried no error message")
	}
}

func TestDaemonTimeout(t *testing.T) {
	_, srv := newTestServer(t)
	// A wide DP table (capacity 500000, 60 tasks with pairwise-coprime-ish
	// cycle counts that defeat gcd rescaling) takes tens of milliseconds;
	// a 1 ms budget cannot cover it, so the handler must answer 504.
	var sb strings.Builder
	sb.WriteString(`{"solver": "DP", "deadline": 500000, "smax": 1, "timeout_ms": 1, "tasks": [`)
	for i := 0; i < 60; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"id": %d, "cycles": %d, "penalty": %d}`, i+1, 7919+2*i*i+i, 5+i)
	}
	sb.WriteString(`]}`)
	resp := post(t, srv.URL+"/solve", sb.String())
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline overrun: status %d, want 504", resp.StatusCode)
	}
	var body serve.WireResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error == "" {
		t.Error("504 response carried no error message")
	}
}

func TestDaemonEmptyBatch(t *testing.T) {
	_, srv := newTestServer(t)
	for _, body := range []string{`{"requests": []}`, `{}`} {
		resp := post(t, srv.URL+"/batch", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("empty batch %q: status %d, want 200", body, resp.StatusCode)
		}
		var out serve.WireBatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if len(out.Responses) != 0 {
			t.Errorf("empty batch %q returned %d responses", body, len(out.Responses))
		}
	}
}

func TestDaemonStatsReconcile(t *testing.T) {
	engine, srv := newTestServer(t)
	// Two identical solves: one miss, one hit.
	for i := 0; i < 2; i++ {
		if resp := post(t, srv.URL+"/solve", smallInstance("DP")); resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("stats = %+v, want 2 requests / 1 hit / 1 miss", st)
	}
	// The HTTP view must match the engine's own counters.
	if direct := engine.Stats(); direct != st {
		t.Errorf("HTTP stats %+v diverge from engine stats %+v", st, direct)
	}
}
