// Command bench is the benchmark-regression harness: it runs the core
// solver microbenchmarks programmatically (the same instances as the
// BenchmarkSolver* functions in bench_test.go) and writes a
// machine-readable JSON report, BENCH_core.json by default. Committing the
// report alongside a performance-sensitive change gives reviewers and CI a
// before/after record without re-deriving numbers from log output:
//
//	go run ./cmd/bench -o BENCH_core.json            # or: make bench-json
//	go run ./cmd/bench -benchtime 5s -o after.json   # longer, steadier runs
//
// For statistically rigorous comparisons, run the regular `go test -bench`
// twice and feed the outputs to benchstat; this harness trades confidence
// intervals for a stable machine-readable snapshot.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"dvsreject/internal/cache"
	"dvsreject/internal/core"
	"dvsreject/internal/dormant"
	"dvsreject/internal/exper"
	"dvsreject/internal/gen"
	"dvsreject/internal/multiproc"
	"dvsreject/internal/online"
	"dvsreject/internal/power"
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/serve"
	"dvsreject/internal/speed"
)

type result struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	// M is the processor count of multiprocessor cases; omitted (0) for
	// single-processor benchmarks, keeping the schema backward-compatible.
	M           int     `json:"m,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Cache is set only for the serve-layer benchmarks: the engine's
	// plan-cache counters after the measured run. Omitted elsewhere, so
	// the schema stays backward-compatible.
	Cache *cache.Stats `json:"cache,omitempty"`
}

type report struct {
	GeneratedAt string   `json:"generated_at"`
	GoOS        string   `json:"goos"`
	GoArch      string   `json:"goarch"`
	GoMaxProcs  int      `json:"gomaxprocs"`
	BenchTime   string   `json:"benchtime"`
	Results     []result `json:"results"`
}

// instance mirrors benchInstance in bench_test.go: one deterministic
// contested instance per size.
func instance(n int, load float64) (core.Instance, error) {
	set, err := gen.Frame(rand.New(rand.NewSource(42)), gen.Config{
		N: n, Load: load, Deadline: 1000,
	})
	if err != nil {
		return core.Instance{}, err
	}
	return core.Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}}, nil
}

// multiprocInstance mirrors BenchmarkMultiprocLTFRejectLS: total load
// scales with M so every processor sees load 1.5.
func multiprocInstance(n, m int) (multiproc.Instance, error) {
	set, err := gen.Frame(rand.New(rand.NewSource(42)), gen.Config{
		N: n, Load: 1.5 * float64(m), Deadline: 1000,
	})
	if err != nil {
		return multiproc.Instance{}, err
	}
	return multiproc.Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}, M: m}, nil
}

// dormantWorkload mirrors BenchmarkDormantCompare: a light-load storm on a
// dormant-enable XScale processor, redrawing jointly infeasible draws.
func dormantWorkload(n int) ([]edf.Job, float64, speed.Proc, error) {
	rng := rand.New(rand.NewSource(42))
	proc := speed.Proc{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 0.4}
	for attempt := 0; attempt < 100; attempt++ {
		storm := online.RandomStorm(rng, online.StormConfig{N: n, Load: 0.4, Span: 200})
		jobs := make([]edf.Job, 0, len(storm))
		horizon := 0.0
		for _, j := range storm {
			jobs = append(jobs, edf.Job{TaskID: j.ID, Release: j.Arrival, Deadline: j.Deadline, Cycles: j.Cycles})
			if j.Deadline > horizon {
				horizon = j.Deadline
			}
		}
		if _, _, err := dormant.Compare(jobs, 1, horizon, proc); err == nil {
			return jobs, horizon, proc, nil
		}
	}
	return nil, 0, speed.Proc{}, fmt.Errorf("no feasible storm in 100 draws")
}

// serveErr unwraps a serve response into the error the harness checks.
func serveErr(r serve.Response) error { return r.Err }

func main() {
	testing.Init()
	out := flag.String("o", "BENCH_core.json", "output path for the JSON report")
	benchtime := flag.String("benchtime", "1s", "minimum measuring time per benchmark (forwarded to the testing package)")
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -benchtime: %v\n", err)
		os.Exit(1)
	}

	cases := []struct {
		name   string
		sizes  []int
		solver core.Solver
	}{
		{"SolverDP", []int{10, 100, 1000}, core.DP{}},
		{"SolverApproxDP", []int{10, 100, 1000}, core.ApproxDP{Eps: 0.1}},
		{"SolverGreedyDensity", []int{10, 100, 1000, 10000}, core.GreedyDensity{}},
		{"SolverGreedyMarginal", []int{10, 100, 1000}, core.GreedyMarginal{}},
		{"SolverRounding", []int{10, 100, 1000}, core.Rounding{}},
		{"SolverExhaustive", []int{12, 16, 20}, core.Exhaustive{Workers: 1}},
		{"SolverExhaustiveParallel", []int{16, 20}, core.Exhaustive{}},
		{"SolverRandomAdmission", []int{100, 1000}, core.RandomAdmission{Seed: 1, Restarts: 32, Workers: 1}},
		{"SolverRandomAdmissionParallel", []int{100, 1000}, core.RandomAdmission{Seed: 1, Restarts: 32}},
	}

	// benchCase is one measured operation; fn performs a single iteration.
	// stats, when non-nil, snapshots the serve engine's cache counters
	// after the measured run.
	type benchCase struct {
		name  string
		n, m  int
		fn    func() error
		stats func() cache.Stats
	}
	var benchCases []benchCase
	for _, c := range cases {
		for _, n := range c.sizes {
			in, err := instance(n, 1.5)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: %s/n=%d: %v\n", c.name, n, err)
				os.Exit(1)
			}
			solver := c.solver
			benchCases = append(benchCases, benchCase{
				name: c.name, n: n,
				fn: func() error { _, err := solver.Solve(in); return err },
			})
		}
	}
	// The multiproc/online/dormant extensions, mirroring the root
	// bench_test.go shapes (LTF-REJECT-LS at per-processor load 1.5, the
	// E11 storm, the E14 light-load dormant comparison).
	for _, m := range []int{2, 4, 8} {
		in, err := multiprocInstance(64, m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: MultiprocLTFRejectLS/M=%d: %v\n", m, err)
			os.Exit(1)
		}
		benchCases = append(benchCases, benchCase{
			name: "MultiprocLTFRejectLS", n: 64, m: m,
			fn: func() error { _, err := (multiproc.LTFRejectLS{}).Solve(in); return err },
		})
	}
	{
		jobs := online.RandomStorm(rand.New(rand.NewSource(42)), online.StormConfig{N: 64, Load: 1.5})
		proc := speed.Proc{Model: power.Cubic(), SMax: 1}
		benchCases = append(benchCases, benchCase{
			name: "OnlineSimulate", n: 64,
			fn: func() error { _, err := online.Simulate(jobs, proc, online.MarginalCost{}); return err },
		})
	}
	{
		jobs, horizon, proc, err := dormantWorkload(64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: DormantCompare: %v\n", err)
			os.Exit(1)
		}
		benchCases = append(benchCases, benchCase{
			name: "DormantCompare", n: 64,
			fn: func() error { _, _, err := dormant.Compare(jobs, 1, horizon, proc); return err },
		})
	}
	// The serving layer (internal/serve): a cold solve (cache cleared
	// every iteration), a warm cache hit, and a 64-request batch in the
	// steady (warm) state — all on the DP n=100 instance the 50×
	// hit-speedup criterion is stated against.
	{
		in, err := instance(100, 1.5)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: Serve: %v\n", err)
			os.Exit(1)
		}
		req := serve.Request{Tasks: in.Tasks, Proc: in.Proc, Solver: "DP"}
		ctx := context.Background()

		cold := serve.New(serve.Config{})
		benchCases = append(benchCases, benchCase{
			name: "ServeColdSolve", n: 100,
			fn: func() error {
				cold.Reset()
				return serveErr(cold.Solve(ctx, req))
			},
			stats: func() cache.Stats { return cold.Stats().Cache },
		})

		warm := serve.New(serve.Config{})
		if err := serveErr(warm.Solve(ctx, req)); err != nil {
			fmt.Fprintf(os.Stderr, "bench: ServeWarmHit prewarm: %v\n", err)
			os.Exit(1)
		}
		benchCases = append(benchCases, benchCase{
			name: "ServeWarmHit", n: 100,
			fn: func() error {
				r := warm.Solve(ctx, req)
				if r.Err == nil && !r.CacheHit {
					return fmt.Errorf("warm solve missed the cache")
				}
				return r.Err
			},
			stats: func() cache.Stats { return warm.Stats().Cache },
		})

		batchReqs := make([]serve.Request, 64)
		for i := range batchReqs {
			bin, err := instance(100, 1.2+0.01*float64(i))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: ServeBatch64: %v\n", err)
				os.Exit(1)
			}
			batchReqs[i] = serve.Request{Tasks: bin.Tasks, Proc: bin.Proc, Solver: "DP"}
		}
		batch := serve.New(serve.Config{})
		benchCases = append(benchCases, benchCase{
			name: "ServeBatch64", n: 100,
			fn: func() error {
				for _, r := range batch.SolveBatch(ctx, batchReqs) {
					if r.Err != nil {
						return r.Err
					}
				}
				return nil
			},
			stats: func() cache.Stats { return batch.Stats().Cache },
		})
	}
	// The harness itself: one quick-mode pass over all fifteen experiments
	// on the full worker pool, the unit CI smokes and the suite scales by.
	benchCases = append(benchCases, benchCase{
		name: "ExperimentsQuickSuite", n: len(exper.All()),
		fn: func() error {
			_, err := exper.RunSuite(exper.All(), exper.Options{Quick: true, Seed: 1})
			return err
		},
	})

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		BenchTime:   *benchtime,
	}
	for _, c := range benchCases {
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := c.fn(); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "bench: %s/n=%d: %v\n", c.name, c.n, runErr)
			os.Exit(1)
		}
		res := result{
			Name:        c.name,
			N:           c.n,
			M:           c.m,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if c.stats != nil {
			st := c.stats()
			res.Cache = &st
		}
		rep.Results = append(rep.Results, res)
		label := fmt.Sprintf("n=%d", res.N)
		if res.M > 0 {
			label = fmt.Sprintf("n=%d M=%d", res.N, res.M)
		}
		fmt.Printf("%-30s %-12s %14.0f ns/op %8d B/op %6d allocs/op\n",
			res.Name, label, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Results))
}
