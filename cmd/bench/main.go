// Command bench is the benchmark-regression harness: it runs the core
// solver microbenchmarks programmatically (the same instances as the
// BenchmarkSolver* functions in bench_test.go) and writes a
// machine-readable JSON report, BENCH_core.json by default. Committing the
// report alongside a performance-sensitive change gives reviewers and CI a
// before/after record without re-deriving numbers from log output:
//
//	go run ./cmd/bench -o BENCH_core.json            # or: make bench-json
//	go run ./cmd/bench -benchtime 5s -o after.json   # longer, steadier runs
//
// Regression gating compares the fresh run against a committed baseline,
// printing per-case ns/op deltas and exiting non-zero when any case slows
// down beyond the threshold (15% by default):
//
//	go run ./cmd/bench -compare BENCH_core.json -o new.json   # or: make bench-diff
//	go run ./cmd/bench -compare old.json -max-regress 25
//
// Profiling a run (the output feeds `go tool pprof`):
//
//	go run ./cmd/bench -cpuprofile cpu.out -memprofile mem.out
//
// For statistically rigorous comparisons, run the regular `go test -bench`
// twice and feed the outputs to benchstat; this harness trades confidence
// intervals for a stable machine-readable snapshot.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"dvsreject/internal/anytime"
	"dvsreject/internal/cache"
	"dvsreject/internal/core"
	"dvsreject/internal/dormant"
	"dvsreject/internal/exper"
	"dvsreject/internal/gen"
	"dvsreject/internal/multiproc"
	"dvsreject/internal/online"
	"dvsreject/internal/power"
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/serve"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
)

type result struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	// M is the processor count of multiprocessor cases; omitted (0) for
	// single-processor benchmarks, keeping the schema backward-compatible.
	M           int     `json:"m,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Cache is set only for the serve-layer benchmarks: the engine's
	// plan-cache counters after the measured run. Omitted elsewhere, so
	// the schema stays backward-compatible.
	Cache *cache.Stats `json:"cache,omitempty"`
}

type report struct {
	GeneratedAt string   `json:"generated_at"`
	GoOS        string   `json:"goos"`
	GoArch      string   `json:"goarch"`
	GoMaxProcs  int      `json:"gomaxprocs"`
	BenchTime   string   `json:"benchtime"`
	Results     []result `json:"results"`
}

// instance mirrors benchInstance in bench_test.go: one deterministic
// contested instance per size.
func instance(n int, load float64) (core.Instance, error) {
	set, err := gen.Frame(rand.New(rand.NewSource(42)), gen.Config{
		N: n, Load: load, Deadline: 1000,
	})
	if err != nil {
		return core.Instance{}, err
	}
	return core.Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}}, nil
}

// multiprocInstance mirrors BenchmarkMultiprocLTFRejectLS: total load
// scales with M so every processor sees load 1.5.
func multiprocInstance(n, m int) (multiproc.Instance, error) {
	set, err := gen.Frame(rand.New(rand.NewSource(42)), gen.Config{
		N: n, Load: 1.5 * float64(m), Deadline: 1000,
	})
	if err != nil {
		return multiproc.Instance{}, err
	}
	return multiproc.Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}, M: m}, nil
}

// heteroInstance is the HeteroPartition case: a two-type big.LITTLE
// vector (half the processors at smax 1, half at 0.5) with total load
// scaled so the platform sees load 1.5.
func heteroInstance(n, m int) (multiproc.HeteroInstance, error) {
	procs, err := gen.BigLittle(gen.BigLittleConfig{NBig: m / 2, NLittle: m - m/2, Ratio: 2})
	if err != nil {
		return multiproc.HeteroInstance{}, err
	}
	smaxTotal := 0.0
	for _, p := range procs {
		smaxTotal += p.SMax
	}
	set, err := gen.Frame(rand.New(rand.NewSource(42)), gen.Config{
		N: n, Load: 1.5 * smaxTotal, Deadline: 1000,
	})
	if err != nil {
		return multiproc.HeteroInstance{}, err
	}
	return multiproc.HeteroInstance{Tasks: set, Procs: procs}, nil
}

// dormantWorkload mirrors BenchmarkDormantCompare: a light-load storm on a
// dormant-enable XScale processor, redrawing jointly infeasible draws.
func dormantWorkload(n int) ([]edf.Job, float64, speed.Proc, error) {
	rng := rand.New(rand.NewSource(42))
	proc := speed.Proc{Model: power.XScale(), SMax: 1, DormantEnable: true, Esw: 0.4}
	for attempt := 0; attempt < 100; attempt++ {
		storm := online.RandomStorm(rng, online.StormConfig{N: n, Load: 0.4, Span: 200})
		jobs := make([]edf.Job, 0, len(storm))
		horizon := 0.0
		for _, j := range storm {
			jobs = append(jobs, edf.Job{TaskID: j.ID, Release: j.Arrival, Deadline: j.Deadline, Cycles: j.Cycles})
			if j.Deadline > horizon {
				horizon = j.Deadline
			}
		}
		if _, _, err := dormant.Compare(jobs, 1, horizon, proc); err == nil {
			return jobs, horizon, proc, nil
		}
	}
	return nil, 0, speed.Proc{}, fmt.Errorf("no feasible storm in 100 draws")
}

// serveErr unwraps a serve response into the error the harness checks.
func serveErr(r serve.Response) error { return r.Err }

// compareReports prints per-case ns/op deltas of fresh against the baseline
// report at path and returns the names of cases whose slowdown exceeds
// maxRegress percent, or — when maxAllocsRegress > 0 — whose allocs/op
// grew by more than that percentage AND by more than a small absolute
// floor (4 allocations, so 1→2 on a near-zero-alloc case never gates).
// Cases present on only one side are reported but never gate (a new
// benchmark has no baseline to regress against).
func compareReports(path string, fresh report, maxRegress, maxAllocsRegress float64) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	key := func(r result) string {
		if r.M > 0 {
			return fmt.Sprintf("%s/n=%d/M=%d", r.Name, r.N, r.M)
		}
		return fmt.Sprintf("%s/n=%d", r.Name, r.N)
	}
	old := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		old[key(r)] = r
	}

	var regressed []string
	fmt.Printf("\n%-42s %14s %14s %9s\n", "benchmark (vs "+path+")", "old ns/op", "new ns/op", "delta")
	for _, r := range fresh.Results {
		k := key(r)
		b, ok := old[k]
		if !ok {
			fmt.Printf("%-42s %14s %14.0f %9s\n", k, "-", r.NsPerOp, "new")
			continue
		}
		delete(old, k)
		delta := (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		mark := ""
		if delta > maxRegress {
			mark = "  REGRESSION"
			regressed = append(regressed, k)
		}
		if maxAllocsRegress > 0 && r.AllocsPerOp-b.AllocsPerOp > 4 &&
			float64(r.AllocsPerOp) > float64(b.AllocsPerOp)*(1+maxAllocsRegress/100) {
			mark += fmt.Sprintf("  ALLOCS %d→%d", b.AllocsPerOp, r.AllocsPerOp)
			regressed = append(regressed, k+" (allocs)")
		}
		fmt.Printf("%-42s %14.0f %14.0f %+8.1f%%%s\n", k, b.NsPerOp, r.NsPerOp, delta, mark)
	}
	for k := range old {
		fmt.Printf("%-42s %14s %14s %9s\n", k, "-", "-", "removed")
	}
	return regressed, nil
}

func main() {
	testing.Init()
	out := flag.String("o", "BENCH_core.json", "output path for the JSON report")
	benchtime := flag.String("benchtime", "1s", "minimum measuring time per benchmark (forwarded to the testing package)")
	compare := flag.String("compare", "", "baseline JSON report to diff against; exit non-zero on regressions")
	maxRegress := flag.Float64("max-regress", 15, "with -compare, the ns/op slowdown percentage that fails the run")
	maxAllocsRegress := flag.Float64("max-allocs-regress", 0, "with -compare, the allocs/op growth percentage that fails the run (0 disables; a 4-alloc absolute floor filters noise)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the benchmark run to this file")
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -benchtime: %v\n", err)
		os.Exit(1)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	cases := []struct {
		name   string
		sizes  []int
		solver core.Solver
	}{
		{"SolverDP", []int{10, 100, 1000, 10000, 100000}, core.DP{}},
		{"SolverApproxDP", []int{10, 100, 1000, 10000, 100000}, core.ApproxDP{Eps: 0.1}},
		{"SolverGreedyDensity", []int{10, 100, 1000, 10000}, core.GreedyDensity{}},
		{"SolverGreedyMarginal", []int{10, 100, 1000}, core.GreedyMarginal{}},
		{"SolverRounding", []int{10, 100, 1000}, core.Rounding{}},
		{"SolverExhaustive", []int{12, 16, 20}, core.Exhaustive{Workers: 1}},
		{"SolverExhaustiveParallel", []int{16, 20}, core.Exhaustive{}},
		{"SolverRandomAdmission", []int{100, 1000}, core.RandomAdmission{Seed: 1, Restarts: 32, Workers: 1}},
		{"SolverRandomAdmissionParallel", []int{100, 1000}, core.RandomAdmission{Seed: 1, Restarts: 32}},
	}

	// benchCase is one measured operation. setup builds the case's
	// workload and returns fn (a single iteration) plus an optional stats
	// snapshot of the serve engine's cache counters. Construction is
	// deferred to just before the measured run — and the workload dropped
	// right after — so one case's live heap (an n=100000 instance, pooled
	// scratch grown to match) never inflates the GC mark cost of the
	// cases that follow.
	type benchCase struct {
		name  string
		n, m  int
		setup func() (fn func() error, stats func() cache.Stats, err error)
	}
	var benchCases []benchCase
	for _, c := range cases {
		for _, n := range c.sizes {
			solver := c.solver
			benchCases = append(benchCases, benchCase{
				name: c.name, n: n,
				setup: func() (func() error, func() cache.Stats, error) {
					in, err := instance(n, 1.5)
					if err != nil {
						return nil, nil, err
					}
					return func() error { _, err := solver.Solve(in); return err }, nil, nil
				},
			})
		}
	}
	// The multiproc/online/dormant extensions, mirroring the root
	// bench_test.go shapes (LTF-REJECT-LS at per-processor load 1.5, the
	// E11 storm, the E14 light-load dormant comparison).
	for _, m := range []int{2, 4, 8} {
		benchCases = append(benchCases, benchCase{
			name: "MultiprocLTFRejectLS", n: 64, m: m,
			setup: func() (func() error, func() cache.Stats, error) {
				in, err := multiprocInstance(64, m)
				if err != nil {
					return nil, nil, err
				}
				return func() error { _, err := (multiproc.LTFRejectLS{}).Solve(in); return err }, nil, nil
			},
		})
	}
	for _, m := range []int{2, 4} {
		benchCases = append(benchCases, benchCase{
			name: "HeteroPartition", n: 24, m: m,
			setup: func() (func() error, func() cache.Stats, error) {
				in, err := heteroInstance(24, m)
				if err != nil {
					return nil, nil, err
				}
				return func() error { _, err := (multiproc.HeteroPartition{}).Solve(in); return err }, nil, nil
			},
		})
	}
	benchCases = append(benchCases, benchCase{
		name: "OnlineSimulate", n: 64,
		setup: func() (func() error, func() cache.Stats, error) {
			jobs := online.RandomStorm(rand.New(rand.NewSource(42)), online.StormConfig{N: 64, Load: 1.5})
			proc := speed.Proc{Model: power.Cubic(), SMax: 1}
			return func() error { _, err := online.Simulate(jobs, proc, online.MarginalCost{}); return err }, nil, nil
		},
	})
	benchCases = append(benchCases, benchCase{
		name: "DormantCompare", n: 64,
		setup: func() (func() error, func() cache.Stats, error) {
			jobs, horizon, proc, err := dormantWorkload(64)
			if err != nil {
				return nil, nil, err
			}
			return func() error { _, _, err := dormant.Compare(jobs, 1, horizon, proc); return err }, nil, nil
		},
	})
	// The serving layer (internal/serve): a cold solve (cache cleared
	// every iteration), a warm cache hit, and a 64-request batch in the
	// steady (warm) state — all on the DP n=100 instance the 50×
	// hit-speedup criterion is stated against.
	serveReq := func() (serve.Request, error) {
		in, err := instance(100, 1.5)
		if err != nil {
			return serve.Request{}, err
		}
		return serve.Request{Tasks: in.Tasks, Proc: in.Proc, Solver: "DP"}, nil
	}
	benchCases = append(benchCases, benchCase{
		name: "ServeColdSolve", n: 100,
		setup: func() (func() error, func() cache.Stats, error) {
			req, err := serveReq()
			if err != nil {
				return nil, nil, err
			}
			ctx := context.Background()
			cold := serve.New(serve.Config{})
			return func() error {
					cold.Reset()
					return serveErr(cold.Solve(ctx, req))
				},
				func() cache.Stats { return cold.Stats().Cache }, nil
		},
	})
	benchCases = append(benchCases, benchCase{
		name: "ServeWarmHit", n: 100,
		setup: func() (func() error, func() cache.Stats, error) {
			req, err := serveReq()
			if err != nil {
				return nil, nil, err
			}
			ctx := context.Background()
			warm := serve.New(serve.Config{})
			if err := serveErr(warm.Solve(ctx, req)); err != nil {
				return nil, nil, fmt.Errorf("prewarm: %v", err)
			}
			return func() error {
					r := warm.Solve(ctx, req)
					if r.Err == nil && !r.CacheHit {
						return fmt.Errorf("warm solve missed the cache")
					}
					return r.Err
				},
				func() cache.Stats { return warm.Stats().Cache }, nil
		},
	})
	benchCases = append(benchCases, benchCase{
		name: "ServeBatch64", n: 100,
		setup: func() (func() error, func() cache.Stats, error) {
			ctx := context.Background()
			batchReqs := make([]serve.Request, 64)
			for i := range batchReqs {
				bin, err := instance(100, 1.2+0.01*float64(i))
				if err != nil {
					return nil, nil, err
				}
				batchReqs[i] = serve.Request{Tasks: bin.Tasks, Proc: bin.Proc, Solver: "DP"}
			}
			batch := serve.New(serve.Config{})
			return func() error {
					for _, r := range batch.SolveBatch(ctx, batchReqs) {
						if r.Err != nil {
							return r.Err
						}
					}
					return nil
				},
				func() cache.Stats { return batch.Stats().Cache }, nil
		},
	})
	// The incremental-solving benchmarks run on a wide DP grid — same
	// generator and load, Deadline 8000 instead of 1000 — because warm
	// starts trade O(n·cap) table rebuilds for O(n + cap) fixed work
	// (context setup, final scan, reconstruction): the wider the grid, the
	// more a full rebuild costs and the more a delta re-solve saves. The
	// narrow n=1000 grid above caps any warm/cold ratio near 4× on fixed
	// cost alone; the wide shape is the regime replanning and serve
	// near-misses actually live in. FastPow is on for the whole group
	// (cold references included, so ratios stay apples-to-apples): without
	// it the final scan's math.Pow per grid cell dominates every warm
	// re-solve.
	const wideDeadline = 8000
	wideInstance := func(n int) (core.Instance, error) {
		set, err := gen.Frame(rand.New(rand.NewSource(42)), gen.Config{
			N: n, Load: 1.5, Deadline: wideDeadline,
		})
		if err != nil {
			return core.Instance{}, err
		}
		return core.Instance{
			Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}, FastPow: true,
		}, nil
	}
	benchCases = append(benchCases, benchCase{
		name: "DPColdWide", n: 1000,
		setup: func() (func() error, func() cache.Stats, error) {
			in, err := wideInstance(1000)
			if err != nil {
				return nil, nil, err
			}
			return func() error { _, err := (core.DP{}).Solve(in); return err }, nil, nil
		},
	})
	// Warm near-miss re-solves from a checkpointed parent state. Append
	// diverges at the parent's final row; the tail modify replays from the
	// nearest stride checkpoint.
	warmState := func() (core.Instance, *core.DPState, error) {
		in, err := wideInstance(1000)
		if err != nil {
			return core.Instance{}, nil, err
		}
		var st core.DPState
		if _, _, err := (core.DP{CheckpointStride: 8}).SolveCheckpoint(in, &st); err != nil {
			return core.Instance{}, nil, err
		}
		return in, &st, nil
	}
	benchCases = append(benchCases, benchCase{
		name: "DPWarmAppend", n: 1000,
		setup: func() (func() error, func() cache.Stats, error) {
			in, st, err := warmState()
			if err != nil {
				return nil, nil, err
			}
			d := core.DP{CheckpointStride: 8}
			mut := in
			base := in.Tasks.Tasks
			mut.Tasks.Tasks = append(base[:len(base):len(base)],
				task.Task{ID: 1000001, Cycles: 7, Penalty: 3})
			return func() error {
				_, _, ok, err := d.SolveFrom(st, mut, false)
				if err == nil && !ok {
					return fmt.Errorf("warm append declined")
				}
				return err
			}, nil, nil
		},
	})
	benchCases = append(benchCases, benchCase{
		name: "DPWarmModify", n: 1000,
		setup: func() (func() error, func() cache.Stats, error) {
			in, st, err := warmState()
			if err != nil {
				return nil, nil, err
			}
			d := core.DP{CheckpointStride: 8}
			mut := in
			ts := append([]task.Task(nil), in.Tasks.Tasks...)
			ts[len(ts)-4].Penalty += 0.5
			mut.Tasks.Tasks = ts
			return func() error {
				_, _, ok, err := d.SolveFrom(st, mut, false)
				if err == nil && !ok {
					return fmt.Errorf("warm modify declined")
				}
				return err
			}, nil, nil
		},
	})
	// Online replanning at n=1000: each operation is one steady-state event
	// pair — a near-tail cancellation plus a fresh arrival — so the frame
	// size holds at 1000 tasks. The incremental replanner evolves one
	// checkpointed DP state; the cold companion rebuilds the full table per
	// event, which is exactly what a replan-from-scratch policy pays.
	replanCase := func(cold bool) func() (func() error, func() cache.Stats, error) {
		return func() (func() error, func() cache.Stats, error) {
			r := online.NewReplanner(speed.Proc{Model: power.Cubic(), SMax: 1}, wideDeadline)
			r.DP = core.DP{CheckpointStride: 16}
			r.Cold = cold
			r.FastPow = true
			rng := rand.New(rand.NewSource(42))
			nextID := 0
			var ids []int
			arrive := func() error {
				nextID++
				if _, err := r.Arrive(task.Task{
					ID: nextID, Cycles: 1 + rng.Int63n(20), Penalty: rng.Float64() * 5,
				}); err != nil {
					return err
				}
				ids = append(ids, nextID)
				return nil
			}
			for len(ids) < 1000 {
				if err := arrive(); err != nil {
					return nil, nil, err
				}
			}
			return func() error {
				i := len(ids) - 4
				id := ids[i]
				ids = append(ids[:i], ids[i+1:]...)
				if _, err := r.Withdraw(id); err != nil {
					return err
				}
				return arrive()
			}, nil, nil
		}
	}
	benchCases = append(benchCases, benchCase{
		name: "OnlineReplanIncremental", n: 1000, setup: replanCase(false),
	})
	benchCases = append(benchCases, benchCase{
		name: "OnlineReplanCold", n: 1000, setup: replanCase(true),
	})
	// The serve delta path at n=1000: every iteration is a unique near-miss
	// mutant — a fingerprint miss by construction — served by a warm start
	// from the resident parent state. The same-size cold case resets the
	// engine (plan cache and similarity index) every iteration.
	serveDeltaReq := func() (serve.Request, error) {
		in, err := wideInstance(1000)
		if err != nil {
			return serve.Request{}, err
		}
		return serve.Request{Tasks: in.Tasks, Proc: in.Proc, Solver: "DP", FastPow: true}, nil
	}
	benchCases = append(benchCases, benchCase{
		name: "ServeColdSolve", n: 1000,
		setup: func() (func() error, func() cache.Stats, error) {
			req, err := serveDeltaReq()
			if err != nil {
				return nil, nil, err
			}
			ctx := context.Background()
			cold := serve.New(serve.Config{Shards: 1, EntriesPerShard: 64, DeltaStride: 8})
			return func() error {
					cold.Reset()
					return serveErr(cold.Solve(ctx, req))
				},
				func() cache.Stats { return cold.Stats().Cache }, nil
		},
	})
	benchCases = append(benchCases, benchCase{
		name: "ServeDeltaSolve", n: 1000,
		setup: func() (func() error, func() cache.Stats, error) {
			req, err := serveDeltaReq()
			if err != nil {
				return nil, nil, err
			}
			ctx := context.Background()
			eng := serve.New(serve.Config{Shards: 1, EntriesPerShard: 64, DeltaStride: 8})
			if err := serveErr(eng.Solve(ctx, req)); err != nil {
				return nil, nil, fmt.Errorf("prewarm: %v", err)
			}
			base := req.Tasks.Tasks
			iter := 0
			fn := func() error {
				iter++
				ts := append([]task.Task(nil), base...)
				ts[len(ts)-2].Penalty += 1e-9 * float64(iter)
				mut := req
				mut.Tasks.Tasks = ts
				r := eng.Solve(ctx, mut)
				if r.Err == nil && r.CacheHit {
					return fmt.Errorf("mutant hit the exact cache")
				}
				return r.Err
			}
			// One probe confirms the mutants actually ride the delta path
			// before anything is measured.
			if err := fn(); err != nil {
				return nil, nil, err
			}
			if eng.Stats().DeltaSolves == 0 {
				return nil, nil, fmt.Errorf("probe mutant was not delta-solved")
			}
			return fn, func() cache.Stats { return eng.Stats().Cache }, nil
		},
	})
	// The sparse-regime pair: one pairwise-coprime instance on a 2^22-wide
	// grid, solved by the dense kernel (admitted, but ~66M grid cells) and
	// by the sparse dominance-pruned rows (~2k breakpoints). The README's
	// ≥10× sparse-regime claim is the ratio of these two. The beyond-wall
	// case is the same family at n=40 on a 2^26 grid — 2.7G cells, past
	// the dense state budget entirely — which only the sparse rows solve.
	sparseInstance := func(n int, deadline float64) (core.Instance, error) {
		set, err := gen.Sparse(rand.New(rand.NewSource(42)), gen.SparseConfig{
			N: n, Deadline: deadline,
		})
		if err != nil {
			return core.Instance{}, err
		}
		return core.Instance{
			Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1},
		}, nil
	}
	benchCases = append(benchCases, benchCase{
		name: "DPSparseRegimeDense", n: 28,
		setup: func() (func() error, func() cache.Stats, error) {
			in, err := sparseInstance(28, 1<<22)
			if err != nil {
				return nil, nil, err
			}
			d := core.DP{Sparse: core.SparseOff}
			return func() error { _, err := d.Solve(in); return err }, nil, nil
		},
	})
	benchCases = append(benchCases, benchCase{
		name: "DPSparseRegimeSparse", n: 28,
		setup: func() (func() error, func() cache.Stats, error) {
			in, err := sparseInstance(28, 1<<22)
			if err != nil {
				return nil, nil, err
			}
			d := core.DP{Sparse: core.SparseOn}
			return func() error { _, err := d.Solve(in); return err }, nil, nil
		},
	})
	benchCases = append(benchCases, benchCase{
		name: "DPSparseBeyondWall", n: 40,
		setup: func() (func() error, func() cache.Stats, error) {
			in, err := sparseInstance(40, 1<<26)
			if err != nil {
				return nil, nil, err
			}
			if _, err := (core.DP{Sparse: core.SparseOff}).Solve(in); err == nil {
				return nil, nil, fmt.Errorf("dense kernel unexpectedly admitted the beyond-wall grid")
			}
			d := core.DP{} // auto mode routes past the dense wall to sparse rows
			return func() error { _, err := d.Solve(in); return err }, nil, nil
		},
	})
	// The anytime tier (internal/anytime): the raw SoA fitness kernel (64
	// genomes × 1024 tasks, the zero-alloc claim), the 10 ms wall-budget
	// solve on the DP n=1000 instance (the ≥99%-of-exact claim is the
	// quality line printed after the table), and the beyond-wall n=40
	// instance only the anytime tier and the sparse rows can answer.
	var anytimeBest, anytimeExact, anytimeWallGap float64
	benchCases = append(benchCases, benchCase{
		name: "AnytimeFitness1024", n: 1024,
		setup: func() (func() error, func() cache.Stats, error) {
			const n, pop = 1024, 64
			stride := (n + 63) / 64
			rng := rand.New(rand.NewSource(42))
			cycles := make([]int64, n)
			penalties := make([]float64, n)
			for i := range cycles {
				cycles[i] = 1 + rng.Int63n(100)
				penalties[i] = rng.Float64() * 5
			}
			genomes := make([]uint64, pop*stride)
			for i := range genomes {
				genomes[i] = rng.Uint64()
			}
			w := make([]int64, pop)
			accPen := make([]float64, pop)
			return func() error {
				anytime.EvaluateFitness(cycles, penalties, genomes, stride, w, accPen)
				return nil
			}, nil, nil
		},
	})
	benchCases = append(benchCases, benchCase{
		name: "AnytimeFront10ms", n: 1000,
		setup: func() (func() error, func() cache.Stats, error) {
			in, err := instance(1000, 1.5)
			if err != nil {
				return nil, nil, err
			}
			exact, err := (core.DP{}).Solve(in)
			if err != nil {
				return nil, nil, err
			}
			anytimeExact = exact.Cost
			s := anytime.Solver{Seed: 1, Budget: 10 * time.Millisecond}
			ctx := context.Background()
			return func() error {
				res, err := s.SolveUntil(ctx, in)
				if err == nil {
					anytimeBest = res.Best.Cost
				}
				return err
			}, nil, nil
		},
	})
	benchCases = append(benchCases, benchCase{
		name: "AnytimeBeyondWall", n: 40,
		setup: func() (func() error, func() cache.Stats, error) {
			in, err := sparseInstance(40, 1<<26)
			if err != nil {
				return nil, nil, err
			}
			if _, err := (core.DP{Sparse: core.SparseOff}).Solve(in); err == nil {
				return nil, nil, fmt.Errorf("dense kernel unexpectedly admitted the beyond-wall grid")
			}
			s := anytime.Solver{Seed: 1, Budget: 10 * time.Millisecond}
			ctx := context.Background()
			return func() error {
				res, err := s.SolveUntil(ctx, in)
				if err == nil {
					anytimeWallGap = res.Gap
				}
				return err
			}, nil, nil
		},
	})
	// The harness itself: one quick-mode pass over all fifteen experiments
	// on the full worker pool, the unit CI smokes and the suite scales by.
	benchCases = append(benchCases, benchCase{
		name: "ExperimentsQuickSuite", n: len(exper.All()),
		setup: func() (func() error, func() cache.Stats, error) {
			return func() error {
				_, err := exper.RunSuite(exper.All(), exper.Options{Quick: true, Seed: 1})
				return err
			}, nil, nil
		},
	})

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		BenchTime:   *benchtime,
	}
	for _, c := range benchCases {
		fn, stats, err := c.setup()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s/n=%d: %v\n", c.name, c.n, err)
			os.Exit(1)
		}
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "bench: %s/n=%d: %v\n", c.name, c.n, runErr)
			os.Exit(1)
		}
		res := result{
			Name:        c.name,
			N:           c.n,
			M:           c.m,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if stats != nil {
			st := stats()
			res.Cache = &st
		}
		rep.Results = append(rep.Results, res)
		label := fmt.Sprintf("n=%d", res.N)
		if res.M > 0 {
			label = fmt.Sprintf("n=%d M=%d", res.N, res.M)
		}
		fmt.Printf("%-30s %-12s %14.0f ns/op %8d B/op %6d allocs/op\n",
			res.Name, label, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		// Two collections between cases: the first moves sync.Pool scratch
		// grown by this case to the victim cache, the second frees it, so
		// the next case starts from a clean heap.
		fn, stats = nil, nil
		runtime.GC()
		runtime.GC()
	}

	// Headline incremental-solving ratios (the README perf table quotes
	// these): warm near-miss re-solves against their cold counterparts.
	ns := make(map[string]float64, len(rep.Results))
	for _, r := range rep.Results {
		ns[fmt.Sprintf("%s/n=%d", r.Name, r.N)] = r.NsPerOp
	}
	printRatio := func(label, cold, warm string) {
		if c, w := ns[cold], ns[warm]; c > 0 && w > 0 {
			fmt.Printf("%-26s %6.1fx  (%s vs %s)\n", label, c/w, warm, cold)
		}
	}
	printRatio("warm append speedup", "DPColdWide/n=1000", "DPWarmAppend/n=1000")
	printRatio("warm modify speedup", "DPColdWide/n=1000", "DPWarmModify/n=1000")
	printRatio("online replan speedup", "OnlineReplanCold/n=1000", "OnlineReplanIncremental/n=1000")
	printRatio("serve delta speedup", "ServeColdSolve/n=1000", "ServeDeltaSolve/n=1000")
	printRatio("sparse rows speedup", "DPSparseRegimeDense/n=28", "DPSparseRegimeSparse/n=28")
	// Anytime quality headlines: solution quality per unit wall time, not
	// speed — the README's ≥99%-of-exact claim at n=1000 in 10 ms and the
	// certified gap on the grid the exact dense solver cannot touch.
	if anytimeBest > 0 && anytimeExact > 0 {
		fmt.Printf("anytime quality @10ms      %6.2f%%  (exact DP cost %.6g vs anytime best %.6g, n=1000)\n",
			100*anytimeExact/anytimeBest, anytimeExact, anytimeBest)
	}
	if anytimeWallGap >= 0 && anytimeBest > 0 {
		fmt.Printf("anytime beyond-wall gap    %7.4f%%  (certified (best−LB)/best @10ms, n=40, D=2^26 grid)\n",
			100*anytimeWallGap)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Results))

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	if *compare != "" {
		regressed, err := compareReports(*compare, rep, *maxRegress, *maxAllocsRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		if len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "bench: %d case(s) regressed (ns/op over %g%% or allocs/op over %g%%): %v\n",
				len(regressed), *maxRegress, *maxAllocsRegress, regressed)
			pprof.StopCPUProfile()
			os.Exit(1)
		}
		fmt.Printf("no regressions over %g%%\n", *maxRegress)
	}
}
