// Command bench is the benchmark-regression harness: it runs the core
// solver microbenchmarks programmatically (the same instances as the
// BenchmarkSolver* functions in bench_test.go) and writes a
// machine-readable JSON report, BENCH_core.json by default. Committing the
// report alongside a performance-sensitive change gives reviewers and CI a
// before/after record without re-deriving numbers from log output:
//
//	go run ./cmd/bench -o BENCH_core.json            # or: make bench-json
//	go run ./cmd/bench -benchtime 5s -o after.json   # longer, steadier runs
//
// For statistically rigorous comparisons, run the regular `go test -bench`
// twice and feed the outputs to benchstat; this harness trades confidence
// intervals for a stable machine-readable snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
)

type result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	GeneratedAt string   `json:"generated_at"`
	GoOS        string   `json:"goos"`
	GoArch      string   `json:"goarch"`
	GoMaxProcs  int      `json:"gomaxprocs"`
	BenchTime   string   `json:"benchtime"`
	Results     []result `json:"results"`
}

// instance mirrors benchInstance in bench_test.go: one deterministic
// contested instance per size.
func instance(n int, load float64) (core.Instance, error) {
	set, err := gen.Frame(rand.New(rand.NewSource(42)), gen.Config{
		N: n, Load: load, Deadline: 1000,
	})
	if err != nil {
		return core.Instance{}, err
	}
	return core.Instance{Tasks: set, Proc: speed.Proc{Model: power.Cubic(), SMax: 1}}, nil
}

func main() {
	testing.Init()
	out := flag.String("o", "BENCH_core.json", "output path for the JSON report")
	benchtime := flag.String("benchtime", "1s", "minimum measuring time per benchmark (forwarded to the testing package)")
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -benchtime: %v\n", err)
		os.Exit(1)
	}

	cases := []struct {
		name   string
		sizes  []int
		solver core.Solver
	}{
		{"SolverDP", []int{10, 100, 1000}, core.DP{}},
		{"SolverApproxDP", []int{10, 100, 1000}, core.ApproxDP{Eps: 0.1}},
		{"SolverGreedyDensity", []int{10, 100, 1000, 10000}, core.GreedyDensity{}},
		{"SolverGreedyMarginal", []int{10, 100, 1000}, core.GreedyMarginal{}},
		{"SolverRounding", []int{10, 100, 1000}, core.Rounding{}},
		{"SolverExhaustive", []int{12, 16, 20}, core.Exhaustive{Workers: 1}},
		{"SolverExhaustiveParallel", []int{16, 20}, core.Exhaustive{}},
		{"SolverRandomAdmission", []int{100, 1000}, core.RandomAdmission{Seed: 1, Restarts: 32, Workers: 1}},
		{"SolverRandomAdmissionParallel", []int{100, 1000}, core.RandomAdmission{Seed: 1, Restarts: 32}},
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		BenchTime:   *benchtime,
	}
	for _, c := range cases {
		for _, n := range c.sizes {
			in, err := instance(n, 1.5)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: %s/n=%d: %v\n", c.name, n, err)
				os.Exit(1)
			}
			solver := c.solver
			var solveErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := solver.Solve(in); err != nil {
						solveErr = err
						b.FailNow()
					}
				}
			})
			if solveErr != nil {
				fmt.Fprintf(os.Stderr, "bench: %s/n=%d: %v\n", c.name, n, solveErr)
				os.Exit(1)
			}
			res := result{
				Name:        c.name,
				N:           n,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			rep.Results = append(rep.Results, res)
			fmt.Printf("%-30s n=%-6d %14.0f ns/op %8d B/op %6d allocs/op\n",
				res.Name, res.N, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Results))
}
