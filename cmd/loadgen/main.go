// Command loadgen drives a rejectschedd daemon with a Zipf-repeated
// instance workload and reports latency percentiles and throughput.
//
//	loadgen -addr http://127.0.0.1:8080 -duration 10s -conns 8 -check
//
// With -addr empty it self-hosts an in-process engine on a loopback
// port, so the serving stack can be benchmarked with one command:
//
//	loadgen -duration 10s -o BENCH_serve.json
//
// The instance pool is drawn deterministically from -seed; request i
// targets instance Zipf(i), so a small hot set dominates — the cache-hit
// regime the daemon is built for. -check precomputes every instance's
// solution with a direct solver run and fails (exit 1) on any non-200
// response or any response that is not bit-identical to the direct solve.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"slices"
	"sort"
	"sync"
	"time"

	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/serve"
	"dvsreject/internal/task"
)

type options struct {
	Addr      string
	Duration  time.Duration
	Conns     int
	Instances int
	N         int
	Zipf      float64
	Seed      int64
	Solver    string
	Batch     int
	Check     bool
	Out       string
}

// report is the JSON consumed by `make bench-json` (BENCH_serve.json).
type report struct {
	DurationS  float64     `json:"duration_s"`
	Conns      int         `json:"conns"`
	Instances  int         `json:"instances"`
	N          int         `json:"n"`
	Solver     string      `json:"solver"`
	Batch      int         `json:"batch,omitempty"`
	Requests   int         `json:"requests"`
	Errors     int         `json:"errors"`
	Mismatches int         `json:"mismatches"`
	Throughput float64     `json:"throughput_rps"`
	P50us      float64     `json:"p50_us"`
	P95us      float64     `json:"p95_us"`
	P99us      float64     `json:"p99_us"`
	Server     serve.Stats `json:"server_stats"`
}

func main() {
	var o options
	flag.StringVar(&o.Addr, "addr", "", "daemon base URL; empty self-hosts an in-process engine")
	flag.DurationVar(&o.Duration, "duration", 5*time.Second, "how long to drive load")
	flag.IntVar(&o.Conns, "conns", 8, "concurrent client workers")
	flag.IntVar(&o.Instances, "instances", 64, "distinct instances in the pool")
	flag.IntVar(&o.N, "n", 50, "tasks per instance")
	flag.Float64Var(&o.Zipf, "zipf", 1.1, "Zipf exponent of instance popularity (> 1)")
	flag.Int64Var(&o.Seed, "seed", 1, "workload seed")
	flag.StringVar(&o.Solver, "solver", "DP", "solver requested per instance")
	flag.IntVar(&o.Batch, "batch", 0, "POST /batch with this many requests per call (0 = /solve)")
	flag.BoolVar(&o.Check, "check", false, "verify every response bit-identically against a direct solve")
	flag.StringVar(&o.Out, "o", "", "write the JSON report to this file")
	flag.Parse()

	rep, err := run(o, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if rep.Errors > 0 || rep.Mismatches > 0 {
		log.Fatalf("loadgen: %d errors, %d mismatches", rep.Errors, rep.Mismatches)
	}
}

func run(o options, w io.Writer) (report, error) {
	base := o.Addr
	if base == "" {
		engine := serve.New(serve.Config{DefaultSolver: o.Solver})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return report{}, err
		}
		srv := &http.Server{Handler: serve.NewHandler(engine)}
		go srv.Serve(l)
		defer srv.Close()
		base = "http://" + l.Addr().String()
		fmt.Fprintf(w, "self-hosted engine on %s\n", base)
	}

	bodies, expected, err := buildWorkload(o)
	if err != nil {
		return report{}, err
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        o.Conns * 2,
		MaxIdleConnsPerHost: o.Conns * 2,
	}}

	type workerOut struct {
		lats       []time.Duration
		requests   int
		errors     int
		mismatches int
	}
	outs := make([]workerOut, o.Conns)
	deadline := time.Now().Add(o.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for wi := 0; wi < o.Conns; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(wi)*7919))
			zipf := rand.NewZipf(rng, o.Zipf, 1, uint64(o.Instances-1))
			out := &outs[wi]
			for time.Now().Before(deadline) {
				if o.Batch > 0 {
					idx := make([]int, o.Batch)
					for k := range idx {
						idx[k] = int(zipf.Uint64())
					}
					out.requests += o.Batch
					t0 := time.Now()
					resps, err := postBatch(client, base, bodies, idx, o.Check)
					lat := time.Since(t0)
					if err != nil {
						out.errors++
						continue
					}
					for k := range idx {
						out.lats = append(out.lats, lat/time.Duration(o.Batch))
						if o.Check && !responseMatches(resps[k], expected[idx[k]]) {
							out.mismatches++
						}
					}
					continue
				}
				i := int(zipf.Uint64())
				out.requests++
				t0 := time.Now()
				resp, err := postSolve(client, base, bodies[i], o.Check)
				out.lats = append(out.lats, time.Since(t0))
				if err != nil {
					out.errors++
					continue
				}
				if o.Check && !responseMatches(resp, expected[i]) {
					out.mismatches++
				}
			}
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := report{
		DurationS: elapsed.Seconds(),
		Conns:     o.Conns, Instances: o.Instances, N: o.N,
		Solver: o.Solver, Batch: o.Batch,
	}
	var lats []time.Duration
	for _, out := range outs {
		rep.Requests += out.requests
		rep.Errors += out.errors
		rep.Mismatches += out.mismatches
		lats = append(lats, out.lats...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	rep.P50us = percentileUS(lats, 0.50)
	rep.P95us = percentileUS(lats, 0.95)
	rep.P99us = percentileUS(lats, 0.99)
	rep.Server = fetchStats(client, base)

	fmt.Fprintf(w, "%d requests in %.2fs (%.0f req/s), p50 %.1fµs p95 %.1fµs p99 %.1fµs, %d errors, %d mismatches\n",
		rep.Requests, rep.DurationS, rep.Throughput, rep.P50us, rep.P95us, rep.P99us, rep.Errors, rep.Mismatches)
	fmt.Fprintf(w, "server: %d cache hits / %d misses / %d evictions, %d coalesced, %d bypasses\n",
		rep.Server.Cache.Hits, rep.Server.Cache.Misses, rep.Server.Cache.Evictions,
		rep.Server.Coalesced, rep.Server.Bypasses)

	if o.Out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return rep, err
		}
		if err := os.WriteFile(o.Out, append(b, '\n'), 0o644); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// buildWorkload draws the instance pool and, when -check is on, its
// reference solutions.
func buildWorkload(o options) ([][]byte, []serve.WireResponse, error) {
	if o.Instances < 1 || o.N < 1 || o.Conns < 1 {
		return nil, nil, fmt.Errorf("loadgen: instances, n and conns must be ≥ 1")
	}
	if o.Zipf <= 1 {
		return nil, nil, fmt.Errorf("loadgen: -zipf must be > 1")
	}
	bodies := make([][]byte, o.Instances)
	expected := make([]serve.WireResponse, o.Instances)
	for i := range bodies {
		set, err := gen.Frame(rand.New(rand.NewSource(o.Seed+int64(i))), gen.Config{
			N:       o.N,
			Load:    1.2,
			Penalty: gen.PenaltyModel(int64(i) % 3),
		})
		if err != nil {
			return nil, nil, err
		}
		wreq := serve.WireRequest{Deadline: set.Deadline, SMax: 1, Solver: o.Solver}
		for _, t := range set.Tasks {
			wreq.Tasks = append(wreq.Tasks, serve.WireTask{ID: t.ID, Cycles: t.Cycles, Penalty: t.Penalty, Rho: t.Rho})
		}
		if bodies[i], err = json.Marshal(wreq); err != nil {
			return nil, nil, err
		}
		if o.Check {
			if expected[i], err = directSolve(set, o.Solver); err != nil {
				return nil, nil, err
			}
		}
	}
	return bodies, expected, nil
}

// directSolve computes the reference wire response the daemon must
// reproduce bit for bit.
func directSolve(set task.Set, solver string) (serve.WireResponse, error) {
	s, err := core.NewSolver(solver, core.SolverSpec{})
	if err != nil {
		return serve.WireResponse{}, err
	}
	req := serve.WireRequest{Deadline: set.Deadline, SMax: 1}
	sreq, err := req.ToRequest()
	if err != nil {
		return serve.WireResponse{}, err
	}
	sol, err := s.Solve(core.Instance{Tasks: set, Proc: sreq.Proc})
	if err != nil {
		return serve.WireResponse{}, err
	}
	return serve.WireResponse{
		Accepted: sol.Accepted, Rejected: sol.Rejected,
		Energy: sol.Energy, Penalty: sol.Penalty, Cost: sol.Cost,
	}, nil
}

// responseMatches compares a wire response against the reference: same
// admission sets, same float bit patterns. Cache/coalescing flags are
// transport metadata and ignored.
func responseMatches(got, want serve.WireResponse) bool {
	if got.Error != "" {
		return false
	}
	bits := math.Float64bits
	return slices.Equal(orEmpty(got.Accepted), orEmpty(want.Accepted)) &&
		slices.Equal(orEmpty(got.Rejected), orEmpty(want.Rejected)) &&
		bits(got.Energy) == bits(want.Energy) &&
		bits(got.Penalty) == bits(want.Penalty) &&
		bits(got.Cost) == bits(want.Cost)
}

func orEmpty(s []int) []int {
	if s == nil {
		return []int{}
	}
	return s
}

// postSolve sends one request. Without decode it drains the body unparsed —
// on a shared CPU the client's JSON decoding competes with the server, and
// uncheck runs only need the status line and the latency.
func postSolve(client *http.Client, base string, body []byte, decode bool) (serve.WireResponse, error) {
	resp, err := client.Post(base+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.WireResponse{}, err
	}
	defer resp.Body.Close()
	var out serve.WireResponse
	if decode || resp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return serve.WireResponse{}, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("status %d: %s", resp.StatusCode, out.Error)
	}
	return out, nil
}

func postBatch(client *http.Client, base string, bodies [][]byte, idx []int, decode bool) ([]serve.WireResponse, error) {
	var batch bytes.Buffer
	batch.WriteString(`{"requests":[`)
	for k, i := range idx {
		if k > 0 {
			batch.WriteByte(',')
		}
		batch.Write(bodies[i])
	}
	batch.WriteString(`]}`)
	resp, err := client.Post(base+"/batch", "application/json", &batch)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("batch status %d", resp.StatusCode)
	}
	if !decode {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	var out serve.WireBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if len(out.Responses) != len(idx) {
		return nil, fmt.Errorf("batch returned %d responses for %d requests", len(out.Responses), len(idx))
	}
	return out.Responses, nil
}

// fetchStats best-effort reads the daemon's counters for the report.
func fetchStats(client *http.Client, base string) serve.Stats {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return serve.Stats{}
	}
	defer resp.Body.Close()
	var st serve.Stats
	json.NewDecoder(resp.Body).Decode(&st)
	return st
}

func percentileUS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Microsecond)
}
