// Command loadgen drives the serving tier — one daemon or a
// consistent-hash cluster — with a Zipf-repeated instance workload and
// reports latency percentiles and throughput.
//
//	loadgen -addr http://127.0.0.1:8080 -duration 10s -conns 8 -check
//
// With -addr empty it self-hosts in process: -nodes N brings up an N-node
// cluster (wire + HTTP listeners per node, warm-cache replication between
// them), so the whole serving stack can be benchmarked with one command:
//
//	loadgen -nodes 3 -proto wire -duration 10s -o BENCH_serve.json
//
// The instance pool is drawn deterministically from -seed; request i
// targets instance Zipf(i), so a small hot set dominates — the cache-hit
// regime the daemon is built for. -rotate swaps the pool for a fresh one
// every interval, so cold misses (and the coalescing of concurrent
// identical ones) recur instead of vanishing after the first second.
// -burst X switches to rounds of X concurrent identical requests against
// a fresh instance per round — the singleflight worst case. -check
// precomputes every instance's solution with a direct solver run and
// fails (exit 1) on any error or any response that is not bit-identical
// to the direct solve. -suite runs the comparison matrix (single node vs
// cluster, HTTP/JSON vs binary wire) and writes one report per run.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"dvsreject/internal/cluster"
	"dvsreject/internal/core"
	"dvsreject/internal/gen"
	"dvsreject/internal/serve"
	"dvsreject/internal/verify"
)

type options struct {
	Addr       string // external daemon(s), comma-separated; "" self-hosts
	Ring       string // ring identities for external clusters (default: the -addr list)
	Nodes      int    // self-hosted cluster size (0/1 = single node)
	Proto      string // http | wire
	Duration   time.Duration
	Conns      int
	Instances  int
	N          int
	Zipf       float64
	Rotate     time.Duration // pool rotation period (0 = static pool)
	Burst      int           // concurrent identical requests per round (0 = Zipf mode)
	Seed       int64
	Solver     string
	Batch      int
	Check      bool
	Suite      bool
	Out        string
	Name       string  // run label in the report
	Compare    string  // baseline report to diff against
	MaxRegress float64 // throughput drop percentage that fails the run
}

// shardRow is one node's counters in the report.
type shardRow struct {
	Addr  string            `json:"addr"`
	Stats cluster.NodeStats `json:"stats"`
}

// report is the JSON consumed by `make bench-json` (BENCH_serve.json).
type report struct {
	Name       string      `json:"name,omitempty"`
	Proto      string      `json:"proto"`
	Nodes      int         `json:"nodes"`
	DurationS  float64     `json:"duration_s"`
	Conns      int         `json:"conns"`
	Instances  int         `json:"instances"`
	N          int         `json:"n"`
	Solver     string      `json:"solver"`
	Batch      int         `json:"batch,omitempty"`
	Burst      int         `json:"burst,omitempty"`
	RotateS    float64     `json:"rotate_s,omitempty"`
	Requests   int         `json:"requests"`
	Errors     int         `json:"errors"`
	Mismatches int         `json:"mismatches"`
	Shed       int         `json:"shed,omitempty"`
	Throughput float64     `json:"throughput_rps"`
	P50us      float64     `json:"p50_us"`
	P95us      float64     `json:"p95_us"`
	P99us      float64     `json:"p99_us"`
	Server     serve.Stats `json:"server_stats"`
	Shards     []shardRow  `json:"shards,omitempty"`
}

// suiteReport wraps the -suite comparison matrix.
type suiteReport struct {
	Runs []report `json:"runs"`
}

func main() {
	var o options
	flag.StringVar(&o.Addr, "addr", "", "daemon address(es), comma-separated; empty self-hosts in process (HTTP base URLs for -proto http, host:port wire addresses for -proto wire)")
	flag.StringVar(&o.Ring, "ring", "", "ring identities for an external cluster, comma-separated and parallel to -addr (default: the -addr list; must match the wire addresses the shards were started with)")
	flag.IntVar(&o.Nodes, "nodes", 1, "self-hosted cluster size")
	flag.StringVar(&o.Proto, "proto", "http", "client protocol: http (JSON) or wire (binary)")
	flag.DurationVar(&o.Duration, "duration", 5*time.Second, "how long to drive load")
	flag.IntVar(&o.Conns, "conns", 8, "concurrent client workers")
	flag.IntVar(&o.Instances, "instances", 64, "distinct instances per pool epoch")
	flag.IntVar(&o.N, "n", 50, "tasks per instance")
	flag.Float64Var(&o.Zipf, "zipf", 1.1, "Zipf exponent of instance popularity (> 1)")
	flag.DurationVar(&o.Rotate, "rotate", time.Second, "swap the instance pool every interval so cold misses recur (0 = static pool)")
	flag.IntVar(&o.Burst, "burst", 0, "burst mode: this many concurrent identical requests per round on a fresh instance (0 = Zipf mode)")
	flag.Int64Var(&o.Seed, "seed", 1, "workload seed")
	flag.StringVar(&o.Solver, "solver", "DP", "solver requested per instance")
	flag.IntVar(&o.Batch, "batch", 0, "POST /batch with this many requests per call (0 = /solve; http, single node only)")
	flag.BoolVar(&o.Check, "check", false, "verify every response bit-identically against a direct solve")
	flag.BoolVar(&o.Suite, "suite", false, "run the comparison matrix (1-node http, N-node http, N-node wire, burst) and emit {\"runs\": [...]}")
	flag.StringVar(&o.Out, "o", "", "write the JSON report to this file")
	flag.StringVar(&o.Compare, "compare", "", "baseline JSON report (suite or single run) to diff against; exit non-zero when throughput regresses")
	flag.Float64Var(&o.MaxRegress, "max-regress", 30, "with -compare, the throughput drop percentage that fails the run")
	flag.Parse()

	if o.Suite {
		if err := runSuite(o, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	rep, err := run(o, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if rep.Errors > 0 || rep.Mismatches > 0 {
		log.Fatalf("loadgen: %d errors, %d mismatches", rep.Errors, rep.Mismatches)
	}
	if err := gateCompare(o, []report{rep}, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// gateCompare diffs fresh runs against the -compare baseline and errors
// when any run's throughput regressed beyond -max-regress percent.
func gateCompare(o options, fresh []report, w io.Writer) error {
	if o.Compare == "" {
		return nil
	}
	regressed, err := compareRuns(o.Compare, fresh, o.MaxRegress, w)
	if err != nil {
		return err
	}
	if len(regressed) > 0 {
		return fmt.Errorf("loadgen: %d run(s) regressed more than %g%%: %v", len(regressed), o.MaxRegress, regressed)
	}
	fmt.Fprintf(w, "no throughput regressions over %g%%\n", o.MaxRegress)
	return nil
}

// compareRuns diffs fresh runs against the baseline report at path (a
// -suite {"runs": [...]} report or a single-run report), keyed by run
// name. Throughput gates: it is the stable aggregate on shared runners.
// p50 latency is printed informationally only — percentiles are too noisy
// to fail a build on.
func compareRuns(path string, fresh []report, maxRegress float64, w io.Writer) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base suiteReport
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(base.Runs) == 0 {
		var one report
		if err := json.Unmarshal(data, &one); err == nil && one.Requests > 0 {
			base.Runs = []report{one}
		}
	}
	key := func(r report) string {
		if r.Name != "" {
			return r.Name
		}
		return fmt.Sprintf("%s/%dnode/burst=%d", r.Proto, r.Nodes, r.Burst)
	}
	old := make(map[string]report, len(base.Runs))
	for _, r := range base.Runs {
		old[key(r)] = r
	}
	var regressed []string
	fmt.Fprintf(w, "\n%-24s %12s %12s %9s %12s\n", "run (vs "+path+")", "old req/s", "new req/s", "delta", "p50 µs")
	for _, r := range fresh {
		k := key(r)
		b, ok := old[k]
		if !ok {
			fmt.Fprintf(w, "%-24s %12s %12.0f %9s %12.1f\n", k, "-", r.Throughput, "new", r.P50us)
			continue
		}
		delete(old, k)
		delta := (r.Throughput - b.Throughput) / b.Throughput * 100
		mark := ""
		if delta < -maxRegress {
			mark = "  REGRESSION"
			regressed = append(regressed, k)
		}
		fmt.Fprintf(w, "%-24s %12.0f %12.0f %+8.1f%% %12.1f%s\n", k, b.Throughput, r.Throughput, delta, r.P50us, mark)
	}
	for k := range old {
		fmt.Fprintf(w, "%-24s %12s %12s %9s\n", k, "-", "-", "removed")
	}
	return regressed, nil
}

// runSuite executes the comparison matrix self-hosted: the single-node
// HTTP baseline, the cluster over both protocols, and a wire burst run
// that drives concurrent identical cold misses through singleflight.
func runSuite(o options, w io.Writer) error {
	nodes := o.Nodes
	if nodes < 2 {
		nodes = 3
	}
	burstDur := min(o.Duration, 3*time.Second)
	configs := []options{
		{Name: "1node-http", Nodes: 1, Proto: "http"},
		{Name: fmt.Sprintf("%dnode-http", nodes), Nodes: nodes, Proto: "http"},
		{Name: fmt.Sprintf("%dnode-wire", nodes), Nodes: nodes, Proto: "wire"},
		{Name: "burst-wire", Nodes: 1, Proto: "wire", Burst: o.Conns,
			N: 30000, Instances: 64, Rotate: -1, Duration: burstDur},
	}
	var suite suiteReport
	for _, c := range configs {
		ro := o
		ro.Suite, ro.Out, ro.Addr = false, "", ""
		ro.Name, ro.Nodes, ro.Proto, ro.Burst = c.Name, c.Nodes, c.Proto, c.Burst
		if c.N != 0 {
			ro.N, ro.Instances, ro.Duration = c.N, c.Instances, c.Duration
		}
		if c.Rotate < 0 {
			ro.Rotate = 0
		}
		fmt.Fprintf(w, "=== %s ===\n", ro.Name)
		rep, err := run(ro, w)
		if err != nil {
			return fmt.Errorf("suite run %s: %w", ro.Name, err)
		}
		if rep.Errors > 0 || rep.Mismatches > 0 {
			return fmt.Errorf("suite run %s: %d errors, %d mismatches", ro.Name, rep.Errors, rep.Mismatches)
		}
		suite.Runs = append(suite.Runs, rep)
	}
	if o.Out != "" {
		b, err := json.MarshalIndent(suite, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.Out, append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	return gateCompare(o, suite.Runs, w)
}

// target is one shard from the client's point of view.
type target struct {
	httpBase string
	wireAddr string
	node     *cluster.Node // self-hosted only
}

// workload is the pregenerated request pool: epochs × instances requests,
// flattened epoch-major, with per-request routing and (under -check) the
// reference solutions.
type workload struct {
	reqs     []serve.Request
	bodies   [][]byte // http JSON forms
	expected []core.Solution
	route    []int // owner target per request
	epochs   int
}

func run(o options, w io.Writer) (report, error) {
	if o.Proto == "" {
		o.Proto = "http"
	}
	if o.Proto != "http" && o.Proto != "wire" {
		return report{}, fmt.Errorf("loadgen: -proto %q, want http or wire", o.Proto)
	}
	targets, ringIDs, cleanup, err := resolveTargets(o, w)
	if err != nil {
		return report{}, err
	}
	defer cleanup()
	if o.Batch > 0 && (o.Proto != "http" || len(targets) > 1) {
		return report{}, fmt.Errorf("loadgen: -batch requires -proto http and a single node")
	}

	wl, err := buildWorkload(o)
	if err != nil {
		return report{}, err
	}
	ring := cluster.NewRing(ringIDs, 0)
	wl.route = make([]int, len(wl.reqs))
	for i, req := range wl.reqs {
		wl.route[i] = ring.Owner(serve.Fingerprint(req, 0))
	}

	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        o.Conns * 2,
		MaxIdleConnsPerHost: o.Conns * 2,
	}}

	nworkers := o.Conns
	if o.Burst > 0 {
		nworkers = o.Burst
	}
	workers := make([]*worker, nworkers)
	for i := range workers {
		workers[i] = &worker{id: i, o: o, wl: wl, targets: targets, httpc: httpc}
	}
	defer func() {
		for _, wk := range workers {
			wk.close()
		}
	}()

	start := time.Now()
	deadline := start.Add(o.Duration)
	if o.Burst > 0 {
		runBurst(o, workers, deadline)
	} else {
		runZipf(o, workers, start, deadline)
	}
	elapsed := time.Since(start)

	rep := report{
		Name: o.Name, Proto: o.Proto, Nodes: len(targets),
		DurationS: elapsed.Seconds(),
		Conns:     o.Conns, Instances: o.Instances, N: o.N,
		Solver: o.Solver, Batch: o.Batch, Burst: o.Burst,
		RotateS: o.Rotate.Seconds(),
	}
	var lats []time.Duration
	for _, wk := range workers {
		rep.Requests += wk.out.requests
		rep.Errors += wk.out.errors
		rep.Mismatches += wk.out.mismatches
		rep.Shed += wk.out.shed
		lats = append(lats, wk.out.lats...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	rep.P50us = percentileUS(lats, 0.50)
	rep.P95us = percentileUS(lats, 0.95)
	rep.P99us = percentileUS(lats, 0.99)
	rep.Shards = collectShards(httpc, targets)
	for _, sh := range rep.Shards {
		rep.Server = addStats(rep.Server, sh.Stats.Engine)
	}

	fmt.Fprintf(w, "%d requests in %.2fs (%.0f req/s), p50 %.1fµs p95 %.1fµs p99 %.1fµs, %d errors, %d mismatches, %d shed\n",
		rep.Requests, rep.DurationS, rep.Throughput, rep.P50us, rep.P95us, rep.P99us, rep.Errors, rep.Mismatches, rep.Shed)
	for _, sh := range rep.Shards {
		fmt.Fprintf(w, "shard %s: %d reqs, %d hits / %d misses, %d delta, %d sparse, %d anytime, %d hetero, %d coalesced, %d warmed, %d repl sent / %d applied, %d wire solves\n",
			sh.Addr, sh.Stats.Engine.Requests, sh.Stats.Engine.Cache.Hits, sh.Stats.Engine.Cache.Misses,
			sh.Stats.Engine.DeltaSolves, sh.Stats.Engine.SparseSolves, sh.Stats.Engine.AnytimeSolves,
			sh.Stats.Engine.HeteroSolves,
			sh.Stats.Engine.Coalesced, sh.Stats.Engine.Warmed,
			sh.Stats.ReplSent, sh.Stats.ReplApplied, sh.Stats.WireSolves)
	}

	if o.Out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return rep, err
		}
		if err := os.WriteFile(o.Out, append(b, '\n'), 0o644); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// resolveTargets either parses the external -addr list or self-hosts a
// -nodes cluster with wire and HTTP listeners per node. The returned ring
// identities are what consistent-hash routing keys on: the wire addresses
// for self-hosted clusters (the same identities the shards replicate by),
// the -ring list (or the -addr list) for external ones.
func resolveTargets(o options, w io.Writer) ([]target, []string, func(), error) {
	if o.Addr != "" {
		addrs := strings.Split(o.Addr, ",")
		ringIDs := addrs
		if o.Ring != "" {
			ringIDs = strings.Split(o.Ring, ",")
			if len(ringIDs) != len(addrs) {
				return nil, nil, nil, fmt.Errorf("loadgen: -ring lists %d identities for %d addrs", len(ringIDs), len(addrs))
			}
		}
		targets := make([]target, len(addrs))
		for i, a := range addrs {
			if o.Proto == "wire" {
				targets[i] = target{wireAddr: a, httpBase: ""}
			} else {
				targets[i] = target{httpBase: a}
			}
		}
		return targets, ringIDs, func() {}, nil
	}

	nodes := o.Nodes
	if nodes < 1 {
		nodes = 1
	}
	wireLns := make([]net.Listener, nodes)
	wireAddrs := make([]string, nodes)
	for i := range wireLns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, err
		}
		wireLns[i] = ln
		wireAddrs[i] = ln.Addr().String()
	}
	targets := make([]target, nodes)
	clusterNodes := make([]*cluster.Node, nodes)
	var srvs []*http.Server
	for i := range targets {
		nd := cluster.NewNode(cluster.NodeConfig{
			Engine: serve.Config{DefaultSolver: o.Solver},
			Self:   wireAddrs[i],
			Peers:  wireAddrs,
		})
		clusterNodes[i] = nd
		go nd.ServeWire(wireLns[i])
		hl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, n := range clusterNodes[:i+1] {
				n.Close()
			}
			return nil, nil, nil, err
		}
		srv := &http.Server{Handler: nd.Handler()}
		srvs = append(srvs, srv)
		go srv.Serve(hl)
		targets[i] = target{httpBase: "http://" + hl.Addr().String(), wireAddr: wireAddrs[i], node: nd}
	}
	fmt.Fprintf(w, "self-hosted %d-node cluster (%s)\n", nodes, strings.Join(wireAddrs, ", "))
	cleanup := func() {
		for _, s := range srvs {
			s.Close()
		}
		for _, n := range clusterNodes {
			n.Close()
		}
	}
	return targets, wireAddrs, cleanup, nil
}

// runZipf drives the steady-state workload: each worker draws Zipf-hot
// instances from the epoch active at the time of the request, so every
// rotation re-introduces a burst of cold misses on hot keys.
func runZipf(o options, workers []*worker, start, deadline time.Time) {
	var wg sync.WaitGroup
	for _, wk := range workers {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(wk.id)*7919))
			zipf := rand.NewZipf(rng, o.Zipf, 1, uint64(o.Instances-1))
			for time.Now().Before(deadline) {
				epoch := 0
				if o.Rotate > 0 {
					epoch = int(time.Since(start) / o.Rotate)
					if epoch >= wk.wl.epochs {
						epoch = wk.wl.epochs - 1
					}
				}
				idx := epoch*o.Instances + int(zipf.Uint64())
				if o.Batch > 0 {
					wk.solveBatch(idx, zipf, epoch)
					continue
				}
				wk.solveOne(idx)
			}
		}(wk)
	}
	wg.Wait()
}

// runBurst drives rounds of len(workers) concurrent identical requests,
// each round against the next (cold, until the pool wraps) instance —
// the singleflight stress shape.
func runBurst(o options, workers []*worker, deadline time.Time) {
	for round := 0; time.Now().Before(deadline); round++ {
		idx := round % len(workers[0].wl.reqs)
		startCh := make(chan struct{})
		var wg sync.WaitGroup
		for _, wk := range workers {
			wg.Add(1)
			go func(wk *worker) {
				defer wg.Done()
				<-startCh
				wk.solveOne(idx)
			}(wk)
		}
		close(startCh)
		wg.Wait()
	}
}

type workerOut struct {
	lats       []time.Duration
	requests   int
	errors     int
	mismatches int
	shed       int
}

// worker is one load-generating client: its own wire connections (one per
// shard), a shared HTTP transport, and private counters.
type worker struct {
	id      int
	o       options
	wl      *workload
	targets []target
	httpc   *http.Client
	wcs     []*cluster.WireClient
	out     workerOut
}

func (wk *worker) close() {
	for _, c := range wk.wcs {
		if c != nil {
			c.Close()
		}
	}
}

func (wk *worker) wire(t int) *cluster.WireClient {
	if wk.wcs == nil {
		wk.wcs = make([]*cluster.WireClient, len(wk.targets))
	}
	if wk.wcs[t] == nil {
		wk.wcs[t] = cluster.NewWireClient(wk.targets[t].wireAddr)
	}
	return wk.wcs[t]
}

// solveOne sends request idx to its owner shard and verifies the response
// when -check is on.
func (wk *worker) solveOne(idx int) {
	t := wk.wl.route[idx]
	wk.out.requests++
	t0 := time.Now()
	if wk.o.Proto == "wire" {
		res, err := wk.wire(t).Solve(wk.wl.reqs[idx])
		wk.out.lats = append(wk.out.lats, time.Since(t0))
		if err != nil {
			var sheddErr *cluster.ShedError
			if errors.As(err, &sheddErr) {
				wk.out.shed++
			} else {
				wk.out.errors++
			}
			return
		}
		if wk.o.Check && verify.BitIdenticalSolutions(res.Solution, wk.wl.expected[idx]) != nil {
			wk.out.mismatches++
		}
		return
	}
	resp, err := postSolve(wk.httpc, wk.targets[t].httpBase, wk.wl.bodies[idx], wk.o.Check)
	wk.out.lats = append(wk.out.lats, time.Since(t0))
	if err != nil {
		if errors.Is(err, errShed) {
			wk.out.shed++
		} else {
			wk.out.errors++
		}
		return
	}
	if wk.o.Check && !responseMatches(resp, toWireResponse(wk.wl.expected[idx])) {
		wk.out.mismatches++
	}
}

// solveBatch sends one /batch call of o.Batch Zipf draws from epoch.
func (wk *worker) solveBatch(first int, zipf *rand.Zipf, epoch int) {
	o := wk.o
	idx := make([]int, o.Batch)
	idx[0] = first
	for k := 1; k < len(idx); k++ {
		idx[k] = epoch*o.Instances + int(zipf.Uint64())
	}
	wk.out.requests += o.Batch
	t0 := time.Now()
	resps, err := postBatch(wk.httpc, wk.targets[0].httpBase, wk.wl.bodies, idx, o.Check)
	lat := time.Since(t0)
	if err != nil {
		wk.out.errors++
		return
	}
	for k := range idx {
		wk.out.lats = append(wk.out.lats, lat/time.Duration(o.Batch))
		if o.Check && !responseMatches(resps[k], toWireResponse(wk.wl.expected[idx[k]])) {
			wk.out.mismatches++
		}
	}
}

// buildWorkload draws the instance pools — one per rotation epoch — and,
// when -check is on, their reference solutions.
func buildWorkload(o options) (*workload, error) {
	if o.Instances < 1 || o.N < 1 || o.Conns < 1 {
		return nil, fmt.Errorf("loadgen: instances, n and conns must be ≥ 1")
	}
	if o.Zipf <= 1 {
		return nil, fmt.Errorf("loadgen: -zipf must be > 1")
	}
	epochs := 1
	if o.Rotate > 0 {
		epochs = int(o.Duration/o.Rotate) + 2
		// Bound pregeneration: past this the tail epochs just stay warm
		// longer.
		if cap := 4096 / o.Instances; epochs > cap && cap >= 1 {
			epochs = cap
		}
	}
	wl := &workload{epochs: epochs}
	total := epochs * o.Instances
	wl.reqs = make([]serve.Request, total)
	wl.bodies = make([][]byte, total)
	if o.Check {
		wl.expected = make([]core.Solution, total)
	}
	for i := 0; i < total; i++ {
		set, err := gen.Frame(rand.New(rand.NewSource(o.Seed+int64(i))), gen.Config{
			N:       o.N,
			Load:    1.2,
			Penalty: gen.PenaltyModel(int64(i) % 3),
		})
		if err != nil {
			return nil, err
		}
		wreq := serve.WireRequest{Deadline: set.Deadline, SMax: 1, Solver: o.Solver}
		for _, t := range set.Tasks {
			wreq.Tasks = append(wreq.Tasks, serve.WireTask{ID: t.ID, Cycles: t.Cycles, Penalty: t.Penalty, Rho: t.Rho})
		}
		if wl.bodies[i], err = json.Marshal(wreq); err != nil {
			return nil, err
		}
		if wl.reqs[i], err = wreq.ToRequest(); err != nil {
			return nil, err
		}
		if o.Check {
			if wl.expected[i], err = directSolve(wl.reqs[i]); err != nil {
				return nil, err
			}
		}
	}
	return wl, nil
}

// directSolve computes the reference solution the serving tier must
// reproduce bit for bit.
func directSolve(req serve.Request) (core.Solution, error) {
	name := req.Solver
	if name == "" {
		name = "DP"
	}
	s, err := core.NewSolver(name, core.SolverSpec{})
	if err != nil {
		return core.Solution{}, err
	}
	return s.Solve(core.Instance{Tasks: req.Tasks, Proc: req.Proc, FastPow: req.FastPow})
}

// toWireResponse flattens a reference solution for HTTP comparison.
func toWireResponse(sol core.Solution) serve.WireResponse {
	return serve.WireResponse{
		Accepted: sol.Accepted, Rejected: sol.Rejected,
		Energy: sol.Energy, Penalty: sol.Penalty, Cost: sol.Cost,
	}
}

// responseMatches compares a wire response against the reference: same
// admission sets, same float bit patterns. Cache/coalescing flags are
// transport metadata and ignored.
func responseMatches(got, want serve.WireResponse) bool {
	if got.Error != "" {
		return false
	}
	bits := math.Float64bits
	return slices.Equal(orEmpty(got.Accepted), orEmpty(want.Accepted)) &&
		slices.Equal(orEmpty(got.Rejected), orEmpty(want.Rejected)) &&
		bits(got.Energy) == bits(want.Energy) &&
		bits(got.Penalty) == bits(want.Penalty) &&
		bits(got.Cost) == bits(want.Cost)
}

func orEmpty(s []int) []int {
	if s == nil {
		return []int{}
	}
	return s
}

// errShed marks a 429 from the admission controller on the HTTP path.
var errShed = errors.New("request shed")

// postSolve sends one request. Without decode it drains the body unparsed —
// on a shared CPU the client's JSON decoding competes with the server, and
// uncheck runs only need the status line and the latency.
func postSolve(client *http.Client, base string, body []byte, decode bool) (serve.WireResponse, error) {
	resp, err := client.Post(base+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.WireResponse{}, err
	}
	defer resp.Body.Close()
	var out serve.WireResponse
	if decode || resp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return serve.WireResponse{}, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return out, errShed
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("status %d: %s", resp.StatusCode, out.Error)
	}
	return out, nil
}

func postBatch(client *http.Client, base string, bodies [][]byte, idx []int, decode bool) ([]serve.WireResponse, error) {
	var batch bytes.Buffer
	batch.WriteString(`{"requests":[`)
	for k, i := range idx {
		if k > 0 {
			batch.WriteByte(',')
		}
		batch.Write(bodies[i])
	}
	batch.WriteString(`]}`)
	resp, err := client.Post(base+"/batch", "application/json", &batch)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("batch status %d", resp.StatusCode)
	}
	if !decode {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	var out serve.WireBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if len(out.Responses) != len(idx) {
		return nil, fmt.Errorf("batch returned %d responses for %d requests", len(out.Responses), len(idx))
	}
	return out.Responses, nil
}

// collectShards snapshots per-node counters: directly for self-hosted
// nodes, over HTTP for external ones (accepting both the cluster
// NodeStats shape and a legacy daemon's bare engine stats).
func collectShards(client *http.Client, targets []target) []shardRow {
	rows := make([]shardRow, len(targets))
	for i, t := range targets {
		addr := t.wireAddr
		if addr == "" {
			addr = t.httpBase
		}
		rows[i].Addr = addr
		if t.node != nil {
			rows[i].Stats = t.node.Stats()
			continue
		}
		if t.httpBase != "" {
			rows[i].Stats = fetchNodeStats(client, t.httpBase)
		}
	}
	return rows
}

func fetchNodeStats(client *http.Client, base string) cluster.NodeStats {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return cluster.NodeStats{}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return cluster.NodeStats{}
	}
	var ns cluster.NodeStats
	json.Unmarshal(raw, &ns)
	if ns.Engine == (serve.Stats{}) {
		// Legacy daemon: /stats is the bare engine counters.
		json.Unmarshal(raw, &ns.Engine)
	}
	return ns
}

func addStats(a, b serve.Stats) serve.Stats {
	a.Requests += b.Requests
	a.Coalesced += b.Coalesced
	a.Bypasses += b.Bypasses
	a.Warmed += b.Warmed
	a.DeltaSolves += b.DeltaSolves
	a.DeltaParents += b.DeltaParents
	a.SparseSolves += b.SparseSolves
	a.SparseCells += b.SparseCells
	a.AnytimeSolves += b.AnytimeSolves
	a.HeteroSolves += b.HeteroSolves
	a.Cache.Hits += b.Cache.Hits
	a.Cache.Misses += b.Cache.Misses
	a.Cache.Evictions += b.Cache.Evictions
	a.Cache.Entries += b.Cache.Entries
	return a
}

func percentileUS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Microsecond)
}
