package main

import (
	"strings"
	"testing"
	"time"
)

// TestSelfHostedCheck drives the full loop — in-process daemon, Zipf
// workload, bit-identical verification — for a short burst.
func TestSelfHostedCheck(t *testing.T) {
	var out strings.Builder
	rep, err := run(options{
		Duration:  300 * time.Millisecond,
		Conns:     4,
		Instances: 8,
		N:         12,
		Zipf:      1.2,
		Seed:      1,
		Solver:    "DP",
		Check:     true,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 || rep.Mismatches != 0 {
		t.Fatalf("%d errors, %d mismatches:\n%s", rep.Errors, rep.Mismatches, out.String())
	}
	if rep.Server.Cache.Hits == 0 {
		t.Error("Zipf workload produced no cache hits")
	}
}

// TestSelfHostedBatchCheck covers the /batch path.
func TestSelfHostedBatchCheck(t *testing.T) {
	var out strings.Builder
	rep, err := run(options{
		Duration:  200 * time.Millisecond,
		Conns:     2,
		Instances: 6,
		N:         10,
		Zipf:      1.2,
		Seed:      2,
		Solver:    "GREEDY",
		Batch:     8,
		Check:     true,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 || rep.Mismatches != 0 {
		t.Fatalf("%d errors, %d mismatches:\n%s", rep.Errors, rep.Mismatches, out.String())
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, _, err := buildWorkload(options{Instances: 0, N: 5, Conns: 1, Zipf: 1.1}); err == nil {
		t.Error("instances = 0 accepted")
	}
	if _, _, err := buildWorkload(options{Instances: 4, N: 5, Conns: 1, Zipf: 1.0}); err == nil {
		t.Error("zipf = 1.0 accepted")
	}
}
