package main

import (
	"strings"
	"testing"
	"time"
)

// TestSelfHostedCheck drives the full loop — in-process daemon, Zipf
// workload, bit-identical verification — for a short burst.
func TestSelfHostedCheck(t *testing.T) {
	var out strings.Builder
	rep, err := run(options{
		Duration:  300 * time.Millisecond,
		Conns:     4,
		Instances: 8,
		N:         12,
		Zipf:      1.2,
		Seed:      1,
		Solver:    "DP",
		Check:     true,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 || rep.Mismatches != 0 {
		t.Fatalf("%d errors, %d mismatches:\n%s", rep.Errors, rep.Mismatches, out.String())
	}
	if rep.Server.Cache.Hits == 0 {
		t.Error("Zipf workload produced no cache hits")
	}
}

// TestSelfHostedBatchCheck covers the /batch path.
func TestSelfHostedBatchCheck(t *testing.T) {
	var out strings.Builder
	rep, err := run(options{
		Duration:  200 * time.Millisecond,
		Conns:     2,
		Instances: 6,
		N:         10,
		Zipf:      1.2,
		Seed:      2,
		Solver:    "GREEDY",
		Batch:     8,
		Check:     true,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 || rep.Mismatches != 0 {
		t.Fatalf("%d errors, %d mismatches:\n%s", rep.Errors, rep.Mismatches, out.String())
	}
}

// TestClusterCheck drives a self-hosted 3-node cluster over both
// protocols with rotation on, verifying every response bit-identically.
func TestClusterCheck(t *testing.T) {
	for _, proto := range []string{"http", "wire"} {
		t.Run(proto, func(t *testing.T) {
			var out strings.Builder
			rep, err := run(options{
				Nodes:     3,
				Proto:     proto,
				Duration:  400 * time.Millisecond,
				Rotate:    150 * time.Millisecond,
				Conns:     4,
				Instances: 8,
				N:         12,
				Zipf:      1.2,
				Seed:      3,
				Solver:    "DP",
				Check:     true,
			}, &out)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Requests == 0 {
				t.Fatal("no requests completed")
			}
			if rep.Errors != 0 || rep.Mismatches != 0 {
				t.Fatalf("%d errors, %d mismatches:\n%s", rep.Errors, rep.Mismatches, out.String())
			}
			if len(rep.Shards) != 3 {
				t.Fatalf("%d shard rows, want 3", len(rep.Shards))
			}
			var reqs uint64
			for _, sh := range rep.Shards {
				reqs += sh.Stats.Engine.Requests
			}
			if reqs == 0 {
				t.Fatal("no shard served any request")
			}
		})
	}
}

// TestBurstMode drives the burst shape — concurrent identical requests
// on fresh instances — and requires bit-identical responses throughout.
func TestBurstMode(t *testing.T) {
	var out strings.Builder
	rep, err := run(options{
		Proto:     "wire",
		Burst:     4,
		Conns:     4,
		Duration:  300 * time.Millisecond,
		Instances: 16,
		N:         2000,
		Zipf:      1.2,
		Seed:      4,
		Solver:    "DP",
		Check:     true,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 || rep.Mismatches != 0 {
		t.Fatalf("%d errors, %d mismatches:\n%s", rep.Errors, rep.Mismatches, out.String())
	}
	// Each round is one cold solve shared by 4 clients: the engine must
	// have answered most requests without solving (hit or coalesced).
	cheap := rep.Server.Cache.Hits + rep.Server.Coalesced
	if cheap == 0 {
		t.Fatalf("burst rounds produced no hits or coalesced responses:\n%s", out.String())
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := buildWorkload(options{Instances: 0, N: 5, Conns: 1, Zipf: 1.1}); err == nil {
		t.Error("instances = 0 accepted")
	}
	if _, err := buildWorkload(options{Instances: 4, N: 5, Conns: 1, Zipf: 1.0}); err == nil {
		t.Error("zipf = 1.0 accepted")
	}
}

func TestRotationBuildsEpochPools(t *testing.T) {
	wl, err := buildWorkload(options{
		Instances: 4, N: 5, Conns: 1, Zipf: 1.1,
		Duration: time.Second, Rotate: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wl.epochs < 2 {
		t.Fatalf("rotation built %d epochs, want ≥ 2", wl.epochs)
	}
	if len(wl.reqs) != wl.epochs*4 {
		t.Fatalf("pool has %d requests for %d epochs × 4 instances", len(wl.reqs), wl.epochs)
	}
	// Distinct epochs must hold distinct instances — otherwise rotation
	// never re-introduces cold misses.
	if len(wl.reqs[0].Tasks.Tasks) == 0 || wl.reqs[0].Tasks.Deadline == wl.reqs[4].Tasks.Deadline &&
		wl.reqs[0].Tasks.Tasks[0].Cycles == wl.reqs[4].Tasks.Tasks[0].Cycles {
		t.Fatal("epoch 0 and epoch 1 share instance 0")
	}
}
