// Command experiments regenerates the evaluation tables of DESIGN.md §4 /
// EXPERIMENTS.md. Each experiment prints a plain-text table; fixed seeds
// make the output reproducible.
//
// Usage:
//
//	experiments [-run E4] [-trials 25] [-seed 1] [-quick]
//
// Without -run, every experiment E1..E10 runs in order.
package main

import (
	"flag"
	"fmt"
	"os"

	"dvsreject/internal/exper"
)

func main() {
	run := flag.String("run", "", "experiment ID to run (e.g. E3); empty runs all")
	trials := flag.Int("trials", 0, "random instances per table cell (0 = per-experiment default)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	quick := flag.Bool("quick", false, "shrunken sweeps for a fast smoke run")
	flag.Parse()

	opts := exper.Options{Trials: *trials, Seed: *seed, Quick: *quick}

	var list []exper.Experiment
	if *run == "" {
		list = exper.All()
	} else {
		e, ok := exper.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; known:", *run)
			for _, e := range exper.All() {
				fmt.Fprintf(os.Stderr, " %s", e.ID)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
		list = []exper.Experiment{e}
	}

	for _, e := range list {
		tab, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(tab.Format())
	}
}
