// Command experiments regenerates the evaluation tables of DESIGN.md §4 /
// EXPERIMENTS.md. Each experiment prints a plain-text table; fixed seeds
// make the output reproducible.
//
// Usage:
//
//	experiments [-run E4] [-trials 25] [-seed 1] [-quick] [-workers 0] [-timing]
//
// Without -run, every experiment E1..E16 runs in order. Experiments and
// their trials run concurrently on a bounded worker pool (-workers; 0 means
// GOMAXPROCS, 1 forces a serial run); results are aggregated in index
// order, so stdout is byte-identical for every worker count at a fixed
// seed. -timing reports per-experiment wall time on stderr, leaving stdout
// untouched.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dvsreject/internal/exper"
)

func main() {
	run := flag.String("run", "", "experiment ID to run (e.g. E3); empty runs all")
	trials := flag.Int("trials", 0, "random instances per table cell (0 = per-experiment default)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	quick := flag.Bool("quick", false, "shrunken sweeps for a fast smoke run")
	workers := flag.Int("workers", 0, "worker pool for experiments and trials (0 = GOMAXPROCS, 1 = serial)")
	timing := flag.Bool("timing", false, "report per-experiment wall time on stderr")
	flag.Parse()

	opts := exper.Options{Trials: *trials, Seed: *seed, Quick: *quick, Workers: *workers}

	var list []exper.Experiment
	if *run == "" {
		list = exper.All()
	} else {
		e, ok := exper.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; known:", *run)
			for _, e := range exper.All() {
				fmt.Fprintf(os.Stderr, " %s", e.ID)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
		list = []exper.Experiment{e}
	}

	start := time.Now()
	results, err := exper.RunSuite(list, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	for i, r := range results {
		fmt.Println(r.Table.Format())
		if *timing {
			fmt.Fprintf(os.Stderr, "timing: %s %s\n", list[i].ID, r.Elapsed.Round(time.Millisecond))
		}
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "timing: total %s\n", time.Since(start).Round(time.Millisecond))
	}
}
