package main

import (
	"bytes"
	"strings"
	"testing"
)

const testInstance = `{
  "deadline": 10,
  "smax": 1,
  "tasks": [
    {"id": 1, "cycles": 4, "penalty": 2.0},
    {"id": 2, "cycles": 4, "penalty": 0.3},
    {"id": 3, "cycles": 5, "penalty": 0.6}
  ]
}`

func TestRunDP(t *testing.T) {
	var out bytes.Buffer
	err := run(strings.NewReader(testInstance), &out, options{Solver: "DP", Model: "cubic", Esw: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"solver      DP", "accepted", "total cost", "EDF check"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunAll(t *testing.T) {
	var out bytes.Buffer
	err := run(strings.NewReader(testInstance), &out, options{Model: "cubic", Esw: -1, All: true})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// The table prints Solver.Name(), which for APPROX differs from the
	// lookup key.
	for _, name := range []string{"DP", "ApproxDP(ε=0.1)", "ApproxDP-V(ε=0.1)", "ROUNDING", "S-GREEDY", "GREEDY", "ACCEPT-ALL", "RAND", "REJECT-ALL"} {
		if !strings.Contains(s, name) {
			t.Errorf("comparison table missing %s:\n%s", name, s)
		}
	}
	if lines := strings.Count(s, "\n"); lines != len(allSolverNames)+1 {
		t.Errorf("table has %d lines, want %d", lines, len(allSolverNames)+1)
	}
}

func TestRunTrace(t *testing.T) {
	var out bytes.Buffer
	err := run(strings.NewReader(testInstance), &out, options{Solver: "DP", Model: "cubic", Esw: -1, ShowTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "#") {
		t.Errorf("trace output missing execution marks:\n%s", out.String())
	}
}

func TestRunXScaleVariants(t *testing.T) {
	for _, o := range []options{
		{Solver: "S-GREEDY", Model: "xscale", Esw: -1},
		{Solver: "S-GREEDY", Model: "xscale", Discrete: true, Esw: -1},
		{Solver: "S-GREEDY", Model: "xscale", Discrete: true, Esw: 0.5},
	} {
		var out bytes.Buffer
		if err := run(strings.NewReader(testInstance), &out, o); err != nil {
			t.Errorf("%+v: %v", o, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		o    options
	}{
		{"bad json", "{", options{Solver: "DP", Model: "cubic", Esw: -1}},
		{"unknown solver", testInstance, options{Solver: "NOPE", Model: "cubic", Esw: -1}},
		{"unknown model", testInstance, options{Solver: "DP", Model: "mystery", Esw: -1}},
		{"discrete cubic", testInstance, options{Solver: "DP", Model: "cubic", Discrete: true, Esw: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(strings.NewReader(tc.in), &out, tc.o); err == nil {
				t.Error("expected error")
			}
		})
	}
}

const testPeriodicInstance = `{
  "type": "periodic",
  "smax": 1,
  "tasks": [
    {"id": 1, "cycles": 5, "period": 20, "penalty": 6.0},
    {"id": 2, "cycles": 9, "period": 30, "penalty": 9.0},
    {"id": 3, "cycles": 12, "period": 40, "penalty": 1.5}
  ]
}`

func TestRunPeriodic(t *testing.T) {
	var out bytes.Buffer
	err := run(strings.NewReader(testPeriodicInstance), &out, options{Solver: "DP", Model: "cubic", Esw: -1, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"hyper-period  120", "accepted", "EDF check"} {
		if !strings.Contains(s, want) {
			t.Errorf("periodic output missing %q:\n%s", want, s)
		}
	}
}

func TestRunPeriodicTrace(t *testing.T) {
	var out bytes.Buffer
	err := run(strings.NewReader(testPeriodicInstance), &out, options{Solver: "S-GREEDY", Model: "cubic", Esw: -1, Periodic: true, ShowTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "#") {
		t.Errorf("periodic trace missing execution marks:\n%s", out.String())
	}
}

func TestRunPeriodicBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(testInstance), &out, options{Solver: "DP", Model: "cubic", Esw: -1, Periodic: true}); err == nil {
		t.Error("frame instance accepted in periodic mode")
	}
}

func TestRunFrontier(t *testing.T) {
	var out bytes.Buffer
	err := run(strings.NewReader(testInstance), &out, options{Model: "cubic", Esw: -1, Frontier: true})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "workload") || strings.Count(s, "\n") < 3 {
		t.Errorf("frontier output malformed:\n%s", s)
	}
}

func TestRunBreakEven(t *testing.T) {
	var out bytes.Buffer
	err := run(strings.NewReader(testInstance), &out, options{Model: "cubic", Esw: -1, BreakEven: true})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "threshold") || !strings.Contains(s, "accept") || !strings.Contains(s, "reject") {
		t.Errorf("break-even output malformed:\n%s", s)
	}
}

// TestRunWorkers pins the -workers wiring: the parallel searchers must
// produce the same output serial (workers = 1) and parallel.
func TestRunWorkers(t *testing.T) {
	outputs := make([]string, 0, 2)
	for _, workers := range []int{1, 4} {
		var out bytes.Buffer
		err := run(strings.NewReader(testInstance), &out,
			options{Solver: "OPT", Model: "cubic", Esw: -1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] {
		t.Errorf("OPT output differs between -workers 1 and -workers 4:\n%s\n---\n%s",
			outputs[0], outputs[1])
	}
}

func TestRunHeteroProcs(t *testing.T) {
	var out bytes.Buffer
	err := run(strings.NewReader(testInstance), &out,
		options{Solver: "DP", Model: "cubic", Esw: -1, Procs: "1,0.5"})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"solver      HETERO-PART", "processors  2", "proc 0", "proc 1", "lower bound", "certified gap"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}

	// Explicit hetero solver names route through the registry.
	out.Reset()
	err = run(strings.NewReader(testInstance), &out,
		options{Solver: "HETERO-LS", Model: "cubic", Esw: -1, Procs: "1,1"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "solver      HETERO-LS") {
		t.Errorf("explicit hetero solver not honoured:\n%s", out.String())
	}

	// A non-hetero solver name with -procs is an error, as is a bad list.
	if err := run(strings.NewReader(testInstance), &out,
		options{Solver: "GREEDY", Model: "cubic", Esw: -1, Procs: "1,0.5"}); err == nil {
		t.Error("single-processor solver with -procs not rejected")
	}
	if err := run(strings.NewReader(testInstance), &out,
		options{Solver: "DP", Model: "cubic", Esw: -1, Procs: "1,fast"}); err == nil {
		t.Error("malformed -procs list not rejected")
	}
}
