// Command rejectsched solves one frame-based rejection instance: it reads
// the JSON interchange format (see cmd/taskgen), runs the selected solver,
// validates the result through the EDF simulator, and prints the admission
// decision with its cost breakdown.
//
// Usage:
//
//	taskgen -n 20 -load 2 | rejectsched -solver DP
//	rejectsched -solver S-GREEDY -model xscale -discrete -esw 0.5 < inst.json
//	rejectsched -all < inst.json       # compare every solver
//	rejectsched -trace < inst.json     # ASCII Gantt of the schedule
//	rejectsched -procs 1,1,0.5 < inst.json  # heterogeneous 3-processor solve
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"dvsreject"
	"dvsreject/internal/multiproc"
	"dvsreject/internal/power"
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
	"dvsreject/internal/task"
	"dvsreject/internal/trace"
)

// options are the command's flags, separated for testability.
type options struct {
	Solver    string
	Model     string
	Discrete  bool
	Esw       float64
	All       bool
	ShowTrace bool
	Periodic  bool
	Frontier  bool
	BreakEven bool
	Workers   int
	Procs     string
}

func main() {
	var o options
	flag.StringVar(&o.Solver, "solver", "DP", "solver: DP | DP-SPARSE | OPT | GREEDY | S-GREEDY | ROUNDING | ACCEPT-ALL | REJECT-ALL | RAND | APPROX | ANYTIME")
	flag.StringVar(&o.Model, "model", "cubic", "power model: cubic | xscale")
	flag.BoolVar(&o.Discrete, "discrete", false, "use the XScale discrete frequency ladder")
	flag.Float64Var(&o.Esw, "esw", -1, "dormant-mode switch energy (< 0 disables the dormant mode)")
	flag.BoolVar(&o.All, "all", false, "run every solver and print a comparison table")
	flag.BoolVar(&o.ShowTrace, "trace", false, "render an ASCII Gantt chart of the schedule")
	flag.BoolVar(&o.Periodic, "periodic", false, "read a periodic instance (see taskgen -periodic)")
	flag.BoolVar(&o.Frontier, "frontier", false, "print the exact energy/penalty Pareto frontier")
	flag.BoolVar(&o.BreakEven, "breakeven", false, "print each task's admission-threshold penalty")
	flag.IntVar(&o.Workers, "workers", 0, "parallel-search workers for OPT and RAND (0 = GOMAXPROCS, 1 = serial)")
	flag.StringVar(&o.Procs, "procs", "", "comma-separated per-processor smax list (e.g. 1,1,0.5): heterogeneous partitioned solve")
	flag.Parse()

	if err := run(os.Stdin, os.Stdout, o); err != nil {
		fmt.Fprintf(os.Stderr, "rejectsched: %v\n", err)
		os.Exit(1)
	}
}

// allSolverNames is the -all lineup, cheapest-exact first.
var allSolverNames = []string{"DP", "DP-SPARSE", "APPROX", "APPROX-V", "ANYTIME", "ROUNDING", "S-GREEDY", "GREEDY", "ACCEPT-ALL", "RAND", "REJECT-ALL"}

// buildProc assembles the processor from the model flags and the
// instance's speed range.
func buildProc(o options, smin, smax float64) (dvsreject.Processor, error) {
	var proc dvsreject.Processor
	switch o.Model {
	case "cubic":
		proc = dvsreject.IdealProcessor(smax)
		proc.SMin = smin
		if o.Discrete {
			return proc, fmt.Errorf("-discrete requires -model xscale")
		}
		if o.Esw >= 0 {
			proc.Model = power.Cubic() // no leakage: dormant mode is free anyway
			proc.DormantEnable = true
			proc.Esw = o.Esw
		}
	case "xscale":
		proc = dvsreject.XScaleProcessor(o.Discrete, o.Esw)
		if !o.Discrete {
			proc.SMax = smax
			proc.SMin = smin
		}
	default:
		return proc, fmt.Errorf("unknown power model %q", o.Model)
	}
	return proc, nil
}

func run(r io.Reader, w io.Writer, o options) error {
	if o.Periodic {
		return runPeriodic(r, w, o)
	}
	inst, err := task.ReadJSON(r)
	if err != nil {
		return err
	}
	if o.Procs != "" {
		return runHetero(inst, w, o)
	}
	proc, err := buildProc(o, inst.SMin, inst.SMax)
	if err != nil {
		return err
	}

	in, err := dvsreject.NewInstance(inst.Set, proc)
	if err != nil {
		return err
	}

	if o.Frontier {
		fr, err := dvsreject.ParetoFrontier(in)
		if err != nil {
			return err
		}
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "workload\tenergy\tpenalty\tcost")
		for _, p := range fr {
			fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\n", p.Workload, p.Energy, p.Penalty, p.Cost)
		}
		return tw.Flush()
	}

	if o.BreakEven {
		opt, err := dvsreject.DP{}.Solve(in)
		if err != nil {
			return err
		}
		acc := opt.AcceptedSet()
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "task\tcycles\tpenalty\tthreshold\tdecision")
		for _, tk := range inst.Set.Tasks {
			th, err := dvsreject.BreakEven(in, tk.ID, 0)
			if err != nil {
				return err
			}
			decision := "reject"
			if acc[tk.ID] {
				decision = "accept"
			}
			fmt.Fprintf(tw, "%d\t%d\t%.4f\t%.4f\t%s\n", tk.ID, tk.Cycles, tk.Penalty, th, decision)
		}
		return tw.Flush()
	}

	if o.All {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "solver\taccepted\trejected\tenergy\tpenalty\tcost")
		for _, name := range allSolverNames {
			s, err := dvsreject.SolverByNameSpec(name, dvsreject.SolverSpec{Workers: o.Workers})
			if err != nil {
				return err
			}
			sol, err := s.Solve(in)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.4f\t%.4f\t%.4f\n",
				s.Name(), len(sol.Accepted), len(sol.Rejected), sol.Energy, sol.Penalty, sol.Cost)
		}
		return tw.Flush()
	}

	solver, err := dvsreject.SolverByNameSpec(o.Solver, dvsreject.SolverSpec{Workers: o.Workers})
	if err != nil {
		return err
	}
	sol, err := solver.Solve(in)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "solver      %s\n", solver.Name())
	fmt.Fprintf(w, "processor   %s", proc.Model)
	if proc.Levels != nil {
		fmt.Fprintf(w, ", levels %v", proc.Levels)
	}
	if proc.DormantEnable {
		fmt.Fprintf(w, ", dormant (Esw=%g)", proc.Esw)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "tasks       %d accepted, %d rejected of %d\n",
		len(sol.Accepted), len(sol.Rejected), len(inst.Set.Tasks))
	fmt.Fprintf(w, "accepted    %v\n", sol.Accepted)
	fmt.Fprintf(w, "rejected    %v\n", sol.Rejected)
	switch {
	case sol.Assignment.HiTime > 0:
		fmt.Fprintf(w, "speeds      %.4f for %.4f, then %.4f for %.4f\n",
			sol.Assignment.LoSpeed, sol.Assignment.LoTime,
			sol.Assignment.HiSpeed, sol.Assignment.HiTime)
	case len(sol.PerTaskSpeeds) > 0:
		fmt.Fprintf(w, "speeds      per-task %v\n", sol.PerTaskSpeeds)
	default:
		fmt.Fprintf(w, "speed       %.4f for %.4f of %g\n",
			sol.Assignment.LoSpeed, sol.Assignment.LoTime, inst.Set.Deadline)
	}
	fmt.Fprintf(w, "energy      %.6f\n", sol.Energy)
	fmt.Fprintf(w, "penalty     %.6f\n", sol.Penalty)
	fmt.Fprintf(w, "total cost  %.6f\n", sol.Cost)

	// Replay through the EDF oracle (homogeneous instances only: the
	// heterogeneous per-task speed schedule is validated inside Evaluate).
	if len(sol.PerTaskSpeeds) == 0 && len(sol.Accepted) > 0 {
		jobs := edf.FrameJobs(inst.Set, sol.Accepted)
		profile := sol.Assignment.Profile(0)
		r, err := edf.Simulate(jobs, profile)
		if err != nil {
			return fmt.Errorf("EDF validation: %w", err)
		}
		if r.Feasible() {
			fmt.Fprintln(w, "EDF check   all accepted tasks meet the deadline")
		} else {
			return fmt.Errorf("EDF validation failed: %d deadline misses", r.Misses)
		}
		if o.ShowTrace {
			fmt.Fprintln(w)
			fmt.Fprint(w, trace.Gantt(r, profile, inst.Set.Deadline, 72))
		}
	}
	return nil
}

// runHetero handles -procs: a heterogeneous partitioned solve over the
// listed per-processor smax values, reported with the certified optimality
// gap from the pooled lower-bound relaxation.
func runHetero(inst task.Instance, w io.Writer, o options) error {
	var procs []speed.Proc
	for i, field := range strings.Split(o.Procs, ",") {
		smax, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return fmt.Errorf("-procs[%d]: %w", i, err)
		}
		proc, err := buildProc(o, 0, smax)
		if err != nil {
			return err
		}
		procs = append(procs, proc)
	}

	name := o.Solver
	if name == "" || name == "DP" {
		name = "HETERO-PART" // the hetero default mirrors -solver's
	}
	solver, ok := multiproc.HeteroSolverByName(name)
	if !ok {
		return fmt.Errorf("-procs requires a heterogeneous solver (%s), got %q",
			strings.Join(multiproc.HeteroSolverNames(), " | "), o.Solver)
	}

	in := multiproc.HeteroInstance{Tasks: inst.Set, Procs: procs}
	res, err := multiproc.SolveHeteroCertified(in, solver)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "solver      %s\n", solver.Name())
	fmt.Fprintf(w, "processors  %d (smax %s)\n", len(procs), o.Procs)
	fmt.Fprintf(w, "tasks       %d accepted, %d rejected of %d\n",
		len(inst.Set.Tasks)-len(res.Rejected), len(res.Rejected), len(inst.Set.Tasks))
	for m, ids := range res.PerProc {
		fmt.Fprintf(w, "proc %-6d %v (energy %.6f)\n", m, ids, res.Energies[m])
	}
	fmt.Fprintf(w, "rejected    %v\n", res.Rejected)
	fmt.Fprintf(w, "energy      %.6f\n", res.Energy)
	fmt.Fprintf(w, "penalty     %.6f\n", res.Penalty)
	fmt.Fprintf(w, "total cost  %.6f\n", res.Cost)
	if res.Gap >= 0 {
		fmt.Fprintf(w, "lower bound %.6f (certified gap %.2f%%)\n", res.LowerBound, 100*res.Gap)
	} else {
		fmt.Fprintln(w, "lower bound unavailable (discrete levels or dormant mode)")
	}
	return nil
}

// runPeriodic handles -periodic: hyper-period reduction, solve, EDF replay
// over the hyper-period.
func runPeriodic(r io.Reader, w io.Writer, o options) error {
	inst, err := task.ReadPeriodicJSON(r)
	if err != nil {
		return err
	}
	proc, err := buildProc(o, inst.SMin, inst.SMax)
	if err != nil {
		return err
	}
	solver, err := dvsreject.SolverByNameSpec(o.Solver, dvsreject.SolverSpec{Workers: o.Workers})
	if err != nil {
		return err
	}
	pi := dvsreject.PeriodicInstance{Tasks: inst.Set, Proc: proc}
	sol, err := dvsreject.SolvePeriodic(solver, pi)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "solver        %s\n", solver.Name())
	fmt.Fprintf(w, "hyper-period  %d\n", sol.Hyper)
	fmt.Fprintf(w, "utilization   %.4f offered, %.4f accepted\n", inst.Set.Utilization(), sol.Speed)
	fmt.Fprintf(w, "accepted      %v\n", sol.Accepted)
	fmt.Fprintf(w, "rejected      %v\n", sol.Rejected)
	fmt.Fprintf(w, "energy        %.6f per hyper-period\n", sol.Energy)
	fmt.Fprintf(w, "penalty       %.6f per hyper-period\n", sol.Penalty)
	fmt.Fprintf(w, "total cost    %.6f\n", sol.Cost)

	if len(sol.Accepted) > 0 {
		accSet := map[int]bool{}
		for _, id := range sol.Accepted {
			accSet[id] = true
		}
		var accepted task.PeriodicSet
		for _, t := range inst.Set.Tasks {
			if accSet[t.ID] {
				accepted.Tasks = append(accepted.Tasks, t)
			}
		}
		jobs := edf.PeriodicJobs(accepted, sol.Hyper)
		profile := speed.Constant(sol.Speed+1e-9, 0, float64(sol.Hyper))
		res, err := edf.Simulate(jobs, profile)
		if err != nil {
			return fmt.Errorf("EDF validation: %w", err)
		}
		if !res.Feasible() {
			return fmt.Errorf("EDF validation failed: %d deadline misses", res.Misses)
		}
		fmt.Fprintf(w, "EDF check     %d jobs per hyper-period, no deadline misses\n", len(jobs))
		if o.ShowTrace {
			fmt.Fprintln(w)
			fmt.Fprint(w, trace.Gantt(res, profile, float64(sol.Hyper), 72))
		}
	}
	return nil
}
