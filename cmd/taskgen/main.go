// Command taskgen generates random frame-based rejection instances in the
// JSON interchange format consumed by rejectsched.
//
// Usage:
//
//	taskgen -n 30 -load 1.5 -deadline 200 -penalty uniform -seed 7 > inst.json
//	taskgen -family sparse -n 20 -seed 7 > sparse.json
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"dvsreject/internal/gen"
	"dvsreject/internal/task"
)

// options are the command's flags, separated for testability.
type options struct {
	Family       string
	N            int
	Load         float64
	Deadline     float64
	DeadlineSet  bool // -deadline given explicitly (family defaults differ)
	SMax         float64
	Penalty      string
	PenaltyScale float64
	Hetero       bool
	Seed         int64
	Periodic     bool
	Utilization  float64
}

func main() {
	var o options
	flag.StringVar(&o.Family, "family", "frame", "instance family: frame | sparse (large pairwise-coprime cycles)")
	flag.IntVar(&o.N, "n", 20, "number of tasks")
	flag.Float64Var(&o.Load, "load", 1.5, "system load Σci/(smax·D)")
	flag.Float64Var(&o.Deadline, "deadline", 1000, "frame length D")
	flag.Float64Var(&o.SMax, "smax", 1, "maximum speed")
	flag.StringVar(&o.Penalty, "penalty", "uniform", "penalty model: uniform | proportional | inverse")
	flag.Float64Var(&o.PenaltyScale, "penalty-scale", 1, "penalty scale factor κ")
	flag.BoolVar(&o.Hetero, "hetero", false, "draw per-task power coefficients from [0.5, 2]")
	flag.Int64Var(&o.Seed, "seed", 1, "RNG seed")
	flag.BoolVar(&o.Periodic, "periodic", false, "generate a periodic instance instead of a frame instance")
	flag.Float64Var(&o.Utilization, "util", 1.2, "total utilization of the periodic instance (with -periodic)")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "deadline" {
			o.DeadlineSet = true
		}
	})

	if err := generate(os.Stdout, o); err != nil {
		fmt.Fprintf(os.Stderr, "taskgen: %v\n", err)
		os.Exit(1)
	}
}

func generate(w io.Writer, o options) error {
	var pm gen.PenaltyModel
	switch o.Penalty {
	case "uniform":
		pm = gen.PenaltyUniform
	case "proportional":
		pm = gen.PenaltyProportional
	case "inverse":
		pm = gen.PenaltyInverse
	default:
		return fmt.Errorf("unknown penalty model %q", o.Penalty)
	}

	switch o.Family {
	case "", "frame":
	case "sparse":
		if o.Periodic {
			return fmt.Errorf("-family sparse and -periodic are mutually exclusive")
		}
		deadline := o.Deadline
		if !o.DeadlineSet {
			deadline = 0 // gen.Sparse defaults to 2^24
		}
		set, err := gen.Sparse(rand.New(rand.NewSource(o.Seed)), gen.SparseConfig{
			N: o.N, Deadline: deadline, Load: o.Load, SMax: o.SMax,
			Penalty: pm, PenaltyScale: o.PenaltyScale,
		})
		if err != nil {
			return err
		}
		return task.Instance{Set: set, SMax: o.SMax}.WriteJSON(w)
	default:
		return fmt.Errorf("unknown family %q (want frame or sparse)", o.Family)
	}

	if o.Periodic {
		ps, err := gen.Periodic(rand.New(rand.NewSource(o.Seed)), gen.PeriodicConfig{
			N: o.N, Utilization: o.Utilization, Penalty: pm, PenaltyScale: o.PenaltyScale,
		})
		if err != nil {
			return err
		}
		return task.PeriodicInstance{Set: ps, SMax: o.SMax}.WriteJSON(w)
	}

	set, err := gen.Frame(rand.New(rand.NewSource(o.Seed)), gen.Config{
		N: o.N, Load: o.Load, Deadline: o.Deadline, SMax: o.SMax,
		Penalty: pm, PenaltyScale: o.PenaltyScale, HeteroRho: o.Hetero,
	})
	if err != nil {
		return err
	}
	return task.Instance{Set: set, SMax: o.SMax}.WriteJSON(w)
}
