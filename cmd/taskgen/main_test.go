package main

import (
	"bytes"
	"testing"

	"dvsreject/internal/task"
)

func TestGenerateRoundTrips(t *testing.T) {
	var out bytes.Buffer
	o := options{N: 15, Load: 1.8, Deadline: 100, SMax: 1, Penalty: "proportional", PenaltyScale: 2, Seed: 9}
	if err := generate(&out, o); err != nil {
		t.Fatal(err)
	}
	inst, err := task.ReadJSON(&out)
	if err != nil {
		t.Fatalf("generated JSON does not parse: %v", err)
	}
	if len(inst.Set.Tasks) != 15 {
		t.Errorf("tasks = %d, want 15", len(inst.Set.Tasks))
	}
	if inst.Set.Deadline != 100 || inst.SMax != 1 {
		t.Errorf("instance header = %+v", inst)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	o := options{N: 5, Load: 1, Deadline: 50, SMax: 1, Penalty: "uniform", PenaltyScale: 1, Seed: 4}
	var a, b bytes.Buffer
	if err := generate(&a, o); err != nil {
		t.Fatal(err)
	}
	if err := generate(&b, o); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}

func TestGenerateHetero(t *testing.T) {
	var out bytes.Buffer
	o := options{N: 8, Load: 1, Deadline: 50, SMax: 1, Penalty: "inverse", PenaltyScale: 1, Hetero: true, Seed: 2}
	if err := generate(&out, o); err != nil {
		t.Fatal(err)
	}
	inst, err := task.ReadJSON(&out)
	if err != nil {
		t.Fatal(err)
	}
	sawRho := false
	for _, tk := range inst.Set.Tasks {
		if tk.Rho != 0 {
			sawRho = true
		}
	}
	if !sawRho {
		t.Error("hetero instance carries no power coefficients")
	}
}

func TestGenerateErrors(t *testing.T) {
	var out bytes.Buffer
	if err := generate(&out, options{N: 5, Penalty: "bogus", SMax: 1, Deadline: 10, Load: 1, PenaltyScale: 1}); err == nil {
		t.Error("unknown penalty model accepted")
	}
	if err := generate(&out, options{N: 0, Penalty: "uniform", SMax: 1, Deadline: 10, Load: 1, PenaltyScale: 1}); err == nil {
		t.Error("zero task count accepted")
	}
}

func TestGeneratePeriodic(t *testing.T) {
	var out bytes.Buffer
	o := options{N: 10, SMax: 1, Penalty: "uniform", PenaltyScale: 1, Seed: 6, Periodic: true, Utilization: 1.3}
	if err := generate(&out, o); err != nil {
		t.Fatal(err)
	}
	pi, err := task.ReadPeriodicJSON(&out)
	if err != nil {
		t.Fatalf("generated periodic JSON does not parse: %v", err)
	}
	if len(pi.Set.Tasks) != 10 {
		t.Errorf("tasks = %d, want 10", len(pi.Set.Tasks))
	}
}

func TestGenerateSparseFamily(t *testing.T) {
	var out bytes.Buffer
	o := options{Family: "sparse", N: 12, Load: 1.2, SMax: 1, Penalty: "uniform", PenaltyScale: 1, Seed: 5}
	if err := generate(&out, o); err != nil {
		t.Fatal(err)
	}
	inst, err := task.ReadJSON(&out)
	if err != nil {
		t.Fatalf("generated JSON does not parse: %v", err)
	}
	if inst.Set.Deadline != 1<<24 {
		t.Errorf("deadline = %v, want the sparse family default 2^24", inst.Set.Deadline)
	}
	if len(inst.Set.Tasks) != 12 {
		t.Errorf("tasks = %d, want 12", len(inst.Set.Tasks))
	}
	// An explicit -deadline overrides the family default.
	out.Reset()
	o.Deadline, o.DeadlineSet = 1<<20, true
	if err := generate(&out, o); err != nil {
		t.Fatal(err)
	}
	if inst, err = task.ReadJSON(&out); err != nil || inst.Set.Deadline != 1<<20 {
		t.Errorf("explicit deadline not honored: %v (err %v)", inst.Set.Deadline, err)
	}
	if err := generate(&out, options{Family: "sparse", Periodic: true, N: 5, SMax: 1, Penalty: "uniform"}); err == nil {
		t.Error("sparse+periodic accepted")
	}
	if err := generate(&out, options{Family: "nope", N: 5, SMax: 1, Penalty: "uniform"}); err == nil {
		t.Error("unknown family accepted")
	}
}
