module dvsreject

go 1.22
