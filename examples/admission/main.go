// Admission control for an overloaded media server.
//
// A frame-based encoder must process one video tile per client every 40 ms
// frame. The machine is oversubscribed (offered load ≈ 180% of what the
// top frequency can sustain), so some clients must be turned away no
// matter what — the question is which, and how fast to run the rest.
// Premium clients carry a high SLA penalty, best-effort clients a low one.
// This is exactly MIN-COST-REJECT: minimize energy + SLA payouts.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dvsreject"
)

func main() {
	const frame = 40.0 // ms; capacity = smax·D = 40 normalized Mcycles
	rng := rand.New(rand.NewSource(7))

	var tasks []dvsreject.Task
	id := 0
	// 6 premium clients: heavier tiles, stiff SLA penalties.
	for i := 0; i < 6; i++ {
		tasks = append(tasks, dvsreject.Task{
			ID:      id,
			Cycles:  int64(6 + rng.Intn(3)), // 6–8 Mcycles
			Penalty: 8 + rng.Float64()*4,    // 8–12 SLA units
		})
		id++
	}
	// 10 best-effort clients: light tiles, token penalties.
	for i := 0; i < 10; i++ {
		tasks = append(tasks, dvsreject.Task{
			ID:      id,
			Cycles:  int64(2 + rng.Intn(3)), // 2–4 Mcycles
			Penalty: 0.3 + rng.Float64(),    // 0.3–1.3 SLA units
		})
		id++
	}

	set := dvsreject.TaskSet{Deadline: frame, Tasks: tasks}
	in, err := dvsreject.NewInstance(set, dvsreject.IdealProcessor(1.0))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clients: %d premium + %d best-effort, offered load %.0f%% of capacity\n\n",
		6, 10, 100*float64(set.TotalCycles())/in.Capacity())

	opt, err := dvsreject.DP{}.Solve(in)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := dvsreject.AcceptAll{}.Solve(in)
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, s dvsreject.Solution) {
		prem, be := 0, 0
		for _, tid := range s.Accepted {
			if tid < 6 {
				prem++
			} else {
				be++
			}
		}
		fmt.Printf("%-22s keeps %d/6 premium, %d/10 best-effort\n", name, prem, be)
		fmt.Printf("%22s energy %.2f + SLA payouts %.2f = %.2f\n", "", s.Energy, s.Penalty, s.Cost)
	}
	report("optimal admission", opt)
	report("feasibility-only", naive)

	if opt.Cost < naive.Cost {
		fmt.Printf("\nenergy-aware admission saves %.1f%% of total cost\n",
			100*(naive.Cost-opt.Cost)/naive.Cost)
	}
	fmt.Println("\nThe optimum turns away MORE clients than feasibility requires:")
	fmt.Println("past a point, the cubic energy of running faster costs more than a")
	fmt.Println("best-effort SLA refund — so it sheds them and runs the premiums slower.")
}
