// Quickstart: admit-or-reject a handful of frame-based tasks on an ideal
// DVS processor and compare the exact optimum with the fast heuristics.
package main

import (
	"fmt"
	"log"

	"dvsreject"
)

func main() {
	// A frame of 10 ms on a processor normalized to smax = 1 (so at most
	// 10 "cycles" fit), with the textbook cubic power model P(s) = s³.
	proc := dvsreject.IdealProcessor(1.0)
	set := dvsreject.TaskSet{
		Deadline: 10,
		Tasks: []dvsreject.Task{
			{ID: 1, Cycles: 4, Penalty: 2.0}, // important: expensive to drop
			{ID: 2, Cycles: 4, Penalty: 0.3}, // cheap to drop
			{ID: 3, Cycles: 3, Penalty: 1.0},
			{ID: 4, Cycles: 5, Penalty: 0.6},
		},
	}
	in, err := dvsreject.NewInstance(set, proc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("frame deadline %g, capacity %g cycles, offered load %d cycles (%.0f%%)\n\n",
		set.Deadline, in.Capacity(), set.TotalCycles(),
		100*float64(set.TotalCycles())/in.Capacity())

	for _, solver := range []dvsreject.Solver{
		dvsreject.DP{},             // exact optimum
		dvsreject.GreedyMarginal{}, // greedy + local search
		dvsreject.GreedyDensity{},  // single-pass greedy
		dvsreject.AcceptAll{},      // energy-oblivious baseline
	} {
		sol, err := solver.Solve(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s accepted %v  rejected %v\n", solver.Name(), sol.Accepted, sol.Rejected)
		fmt.Printf("             energy %.4f + penalty %.4f = cost %.4f (speed %.3f)\n",
			sol.Energy, sol.Penalty, sol.Cost, sol.Assignment.LoSpeed)
	}

	fmt.Println("\nThe optimum drops the cheap-to-reject tasks and runs the rest slowly;")
	fmt.Println("ACCEPT-ALL keeps everything and pays cubic energy for the speed-up.")
}
