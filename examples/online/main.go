// Online admission: jobs arrive over time and each must be accepted
// (deadline guaranteed) or rejected on the spot. The processor re-plans
// the optimal speed schedule (Yao–Demers–Shenker) whenever the pool
// changes, and the marginal-cost policy prices each arrival against that
// plan. A clairvoyant offline optimum shows what future knowledge would
// have been worth.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dvsreject/internal/online"
	"dvsreject/internal/power"
	"dvsreject/internal/speed"
)

func main() {
	proc := speed.Proc{Model: power.Cubic(), SMax: 1}
	jobs := online.RandomStorm(rand.New(rand.NewSource(11)), online.StormConfig{
		N: 10, Load: 1.8,
	})

	fmt.Println("arrival storm (load ≈ 1.8, smax = 1):")
	for _, j := range jobs {
		fmt.Printf("  job %d: arrives %5.1f, deadline %5.1f, work %5.2f, penalty %5.2f\n",
			j.ID, j.Arrival, j.Deadline, j.Cycles, j.Penalty)
	}
	fmt.Println()

	for _, pol := range []online.Policy{
		online.MarginalCost{},
		online.AdmitFeasible{},
		online.RejectEverything{},
	} {
		r, err := online.Simulate(jobs, proc, pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s accepted %v\n", pol.Name(), r.Accepted)
		fmt.Printf("%18s energy %.3f + penalties %.3f = %.3f (misses: %d)\n",
			"", r.Energy, r.Penalty, r.Cost, r.Misses)
	}

	off, err := online.OfflineOptimal(jobs, proc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s accepted %v\n", "CLAIRVOYANT", off.Accepted)
	fmt.Printf("%18s energy %.3f + penalties %.3f = %.3f\n", "", off.Energy, off.Penalty, off.Cost)

	mc, _ := online.Simulate(jobs, proc, online.MarginalCost{})
	fmt.Printf("\nempirical competitive ratio of the marginal-cost policy: %.3f\n", mc.Cost/off.Cost)
	fmt.Println("\nEvery admission is a firm guarantee: no admitted job ever misses,")
	fmt.Println("because the policy only accepts when the re-planned YDS schedule")
	fmt.Println("stays within the processor's top speed.")
}
