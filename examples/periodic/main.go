// Periodic sensor fusion on one DVS core: an overloaded set of periodic
// tasks (total utilization 130%) must shed jobs. The library reduces the
// periodic problem to its frame equivalent over the hyper-period, solves
// it exactly, and this example replays the result through the EDF
// simulator to demonstrate the schedule is real.
package main

import (
	"fmt"
	"log"

	"dvsreject"
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/speed"
)

func main() {
	tasks := []dvsreject.PeriodicTask{
		{ID: 1, Cycles: 5, Period: 20, Penalty: 6.0},   // IMU fusion, u = 0.25
		{ID: 2, Cycles: 9, Period: 30, Penalty: 9.0},   // camera pipeline, u = 0.30
		{ID: 3, Cycles: 12, Period: 40, Penalty: 1.5},  // map refinement, u = 0.30
		{ID: 4, Cycles: 6, Period: 40, Penalty: 5.0},   // telemetry, u = 0.15
		{ID: 5, Cycles: 12, Period: 120, Penalty: 0.4}, // diagnostics, u = 0.10
	}
	pi := dvsreject.PeriodicInstance{
		Tasks: dvsreject.PeriodicSet{Tasks: tasks},
		Proc:  dvsreject.IdealProcessor(1.0),
	}

	fmt.Printf("total utilization %.2f (overloaded: > 1.0 even at top speed)\n\n",
		pi.Tasks.Utilization())

	sol, err := dvsreject.SolvePeriodic(dvsreject.DP{}, pi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hyper-period %d, accepted %v, rejected %v\n", sol.Hyper, sol.Accepted, sol.Rejected)
	fmt.Printf("EDF speed %.4f, energy/hyper-period %.3f, penalties %.3f, cost %.3f\n\n",
		sol.Speed, sol.Energy, sol.Penalty, sol.Cost)

	// Replay: release every job of the accepted tasks across the
	// hyper-period and run preemptive EDF at the chosen constant speed.
	accSet := map[int]bool{}
	for _, id := range sol.Accepted {
		accSet[id] = true
	}
	var accepted dvsreject.PeriodicSet
	for _, t := range tasks {
		if accSet[t.ID] {
			accepted.Tasks = append(accepted.Tasks, t)
		}
	}
	jobs := edf.PeriodicJobs(accepted, sol.Hyper)
	r, err := edf.Simulate(jobs, speed.Constant(sol.Speed, 0, float64(sol.Hyper)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EDF replay: %d jobs released in one hyper-period, %d deadline misses\n",
		len(r.Jobs), r.Misses)
	for _, jr := range r.Jobs[:min(6, len(r.Jobs))] {
		fmt.Printf("  task %d: [%5.1f, %5.1f) finished %6.2f\n",
			jr.TaskID, jr.Release, jr.Deadline, jr.Finish)
	}
	if r.Feasible() {
		fmt.Println("\nEvery admitted job met its deadline — the reduction is sound.")
	}
}
