// A handheld on an Intel XScale-class processor: the real chip offers only
// five frequency levels, not a continuous spectrum. This example shows the
// Ishihara–Yasuura two-level execution the library produces, and what the
// discreteness costs relative to an ideal continuous-speed part.
package main

import (
	"fmt"
	"log"

	"dvsreject"
)

func main() {
	set := dvsreject.TaskSet{
		Deadline: 100, // one sensing/encode frame
		Tasks: []dvsreject.Task{
			{ID: 1, Cycles: 22, Penalty: 9},
			{ID: 2, Cycles: 18, Penalty: 6},
			{ID: 3, Cycles: 15, Penalty: 1.2},
			{ID: 4, Cycles: 12, Penalty: 4},
			{ID: 5, Cycles: 8, Penalty: 0.4},
		},
	}

	// The real part: 150/400/600/800/1000 MHz, P(s) = 0.08 + 1.52·s³ W,
	// dormant-disable (no OS support for the sleep state in this product).
	discrete := dvsreject.XScaleProcessor(true, -1)
	// The idealized part used in paper models: continuous spectrum.
	continuous := dvsreject.XScaleProcessor(false, -1)

	for _, bench := range []struct {
		name string
		proc dvsreject.Processor
	}{
		{"continuous spectrum", continuous},
		{"5-level ladder", discrete},
	} {
		in, err := dvsreject.NewInstance(set, bench.proc)
		if err != nil {
			log.Fatal(err)
		}
		sol, err := dvsreject.DP{}.Solve(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s accepted %v, cost %.4f\n", bench.name, sol.Accepted, sol.Cost)
		a := sol.Assignment
		if a.HiTime > 0 {
			fmt.Printf("%20s run %.1f time units at %.2f, then %.1f at %.2f (two-level split)\n",
				"", a.LoTime, a.LoSpeed, a.HiTime, a.HiSpeed)
		} else {
			fmt.Printf("%20s run %.1f time units at %.3f\n", "", a.LoTime, a.LoSpeed)
		}
	}

	fmt.Println("\nOn the ladder, a workload whose ideal speed falls between two")
	fmt.Println("frequencies is executed as a split between the two adjacent levels —")
	fmt.Println("the provably optimal discrete schedule. The cost gap versus the")
	fmt.Println("continuous spectrum is the price of a finite frequency table.")
}
