// Multiprocessor rejection (extension): a four-core DVS system under 6×
// overload must shed work and partition the rest. Convex power makes
// balanced partitions cheap, and the admission decision interacts with the
// placement — this example compares the constructive heuristic, the
// local-search refinement, and (on a trimmed instance) the exact optimum.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dvsreject"
)

func main() {
	rng := rand.New(rand.NewSource(23))
	set := dvsreject.TaskSet{Deadline: 50}
	for i := 0; i < 24; i++ {
		set.Tasks = append(set.Tasks, dvsreject.Task{
			ID:      i,
			Cycles:  int64(5 + rng.Intn(21)),
			Penalty: 1 + rng.Float64()*14,
		})
	}
	in := dvsreject.MultiprocInstance{
		Tasks: set,
		Proc:  dvsreject.IdealProcessor(1),
		M:     4,
	}
	fmt.Printf("%d tasks, %d cycles offered, capacity %d×%g — load %.0f%%\n\n",
		len(set.Tasks), set.TotalCycles(), in.M, in.Proc.SMax*set.Deadline,
		100*float64(set.TotalCycles())/(float64(in.M)*in.Proc.SMax*set.Deadline))

	for _, s := range []interface {
		Name() string
		Solve(dvsreject.MultiprocInstance) (dvsreject.MultiprocSolution, error)
	}{
		dvsreject.LTFReject{},
		dvsreject.LTFRejectLS{},
	} {
		sol, err := s.Solve(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s cost %.3f (energy %.3f + penalties %.3f), rejected %d\n",
			s.Name(), sol.Cost, sol.Energy, sol.Penalty, len(sol.Rejected))
		for m, ids := range sol.PerProc {
			var w int64
			for _, id := range ids {
				tk, _ := set.ByID(id)
				w += tk.Cycles
			}
			fmt.Printf("%14s core %d: %2d tasks, %3d cycles (%.0f%% busy), E = %.3f\n",
				"", m, len(ids), w, 100*float64(w)/(in.Proc.SMax*set.Deadline), sol.Energies[m])
		}
	}

	// Exact reference on a small slice of the same workload.
	small := in
	small.Tasks.Tasks = set.Tasks[:9]
	small.M = 3
	opt, err := dvsreject.MultiprocExhaustive{}.Solve(small)
	if err != nil {
		log.Fatal(err)
	}
	ls, err := dvsreject.LTFRejectLS{}.Solve(small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n9-task / 3-core slice: OPT %.3f vs LTF-REJECT-LS %.3f (%.1f%% above)\n",
		opt.Cost, ls.Cost, 100*(ls.Cost-opt.Cost)/opt.Cost)
	fmt.Println("\nThe local search's compound moves (evict-one-admit-another, cross-core")
	fmt.Println("exchange) are what close most of the constructive heuristic's gap.")
}
