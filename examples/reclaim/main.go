// Slack reclamation: admission control plans for the worst case, but at
// run time tasks usually finish early. This example admits a task set with
// the exact DP, then executes the frame three ways — the static
// worst-case plan, the cycle-conserving re-planner, and the clairvoyant
// oracle — showing how much of the provisioned energy the re-planner
// recovers.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dvsreject"
	"dvsreject/internal/reclaim"
)

func main() {
	rng := rand.New(rand.NewSource(17))

	// Admission on worst-case budgets, load 150%.
	set := dvsreject.TaskSet{Deadline: 100}
	for i := 0; i < 12; i++ {
		set.Tasks = append(set.Tasks, dvsreject.Task{
			ID:      i,
			Cycles:  int64(5 + rng.Intn(16)),
			Penalty: 2 + rng.Float64()*8,
		})
	}
	in, err := dvsreject.NewInstance(set, dvsreject.IdealProcessor(1))
	if err != nil {
		log.Fatal(err)
	}
	sol, err := dvsreject.DP{}.Solve(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admitted %d of %d tasks (worst-case plan: speed %.3f, energy %.3f)\n\n",
		len(sol.Accepted), len(set.Tasks), sol.Assignment.LoSpeed, sol.Energy)

	// At run time every task uses only 30–100% of its budget.
	acc := sol.AcceptedSet()
	var tasks []reclaim.Task
	for _, tk := range set.Tasks {
		if !acc[tk.ID] {
			continue
		}
		lo := int64(float64(tk.Cycles) * 0.3)
		if lo < 1 {
			lo = 1
		}
		tasks = append(tasks, reclaim.Task{
			ID: tk.ID, WCET: tk.Cycles, Actual: lo + rng.Int63n(tk.Cycles-lo+1),
		})
	}

	fmt.Println("policy   frame-energy   finish   first/last speed")
	var oracle float64
	for _, pol := range []reclaim.Policy{reclaim.Static, reclaim.CycleConserving, reclaim.Oracle} {
		tr, err := reclaim.Run(tasks, set.Deadline, in.Proc.Model, in.Proc.SMax, pol)
		if err != nil {
			log.Fatal(err)
		}
		if pol == reclaim.Oracle {
			oracle = tr.Energy
		}
		fmt.Printf("%-8s %12.4f %8.2f   %.3f → %.3f\n",
			pol, tr.Energy, tr.Finish,
			tr.Steps[0].Speed, tr.Steps[len(tr.Steps)-1].Speed)
	}

	st, _ := reclaim.Run(tasks, set.Deadline, in.Proc.Model, in.Proc.SMax, reclaim.Static)
	cc, _ := reclaim.Run(tasks, set.Deadline, in.Proc.Model, in.Proc.SMax, reclaim.CycleConserving)
	fmt.Printf("\ncycle-conserving recovers %.0f%% of the reclaimable energy\n",
		100*(st.Energy-cc.Energy)/(st.Energy-oracle))
	fmt.Println("(the gap to the oracle is the cost of not knowing the future:")
	fmt.Println(" early tasks still run at worst-case speeds before slack accrues)")
}
