// Leakage-aware scheduling: when static (leakage) power is significant,
// running slower is not always better. Below the critical speed the energy
// per cycle rises again, so a lightly loaded processor should sprint at the
// critical speed and then sleep — if entering the sleep state is cheap
// enough. This example sweeps the shutdown overhead Esw and shows the
// scheduler switching strategy.
package main

import (
	"fmt"
	"log"

	"dvsreject"
	"dvsreject/internal/power"
)

func main() {
	star := power.XScale().CriticalSpeed()
	fmt.Printf("XScale model P(s) = 0.08 + 1.52·s³ → critical speed s* = %.4f\n\n", star)

	// A lightly loaded frame: W/D = 0.05, far below s*.
	set := dvsreject.TaskSet{
		Deadline: 200,
		Tasks: []dvsreject.Task{
			{ID: 1, Cycles: 4, Penalty: 50},
			{ID: 2, Cycles: 3, Penalty: 50},
			{ID: 3, Cycles: 3, Penalty: 50},
		},
	}

	fmt.Println("Esw      strategy                          speed   busy   idle-energy   total")
	for _, esw := range []float64{0, 2, 8, 16, -1} {
		proc := dvsreject.XScaleProcessor(false, esw)
		in, err := dvsreject.NewInstance(set, proc)
		if err != nil {
			log.Fatal(err)
		}
		sol, err := dvsreject.DP{}.Solve(in)
		if err != nil {
			log.Fatal(err)
		}
		a := sol.Assignment
		strategy := "stretch to the deadline"
		if a.Shutdown {
			strategy = "sprint at s*, then sleep"
		} else if esw < 0 {
			strategy = "stretch (no dormant mode)"
		}
		label := fmt.Sprintf("%g", esw)
		if esw < 0 {
			label = "none"
		}
		fmt.Printf("%-8s %-33s %.4f  %6.1f  %11.4f  %9.4f\n",
			label, strategy, a.LoSpeed, a.BusyTime(), a.IdleEnergy, sol.Cost)
	}

	fmt.Println("\nWith cheap shutdown the scheduler executes at the critical speed and")
	fmt.Println("sleeps through the slack; as Esw grows past the break-even point it")
	fmt.Println("stays awake and stretches the execution across the whole frame instead.")
}
