package dvsreject

import (
	"math"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	// The doc-comment example, executed.
	proc := IdealProcessor(1.0)
	set := TaskSet{
		Deadline: 10,
		Tasks: []Task{
			{ID: 1, Cycles: 4, Penalty: 1.0},
			{ID: 2, Cycles: 4, Penalty: 0.2},
		},
	}
	in, err := NewInstance(set, proc)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := (DP{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// Accept task 1 (E(4) = 0.64 < 1.0), reject task 2
	// (E(8)−E(4) = 4.48 > 0.2).
	if got := sol.AcceptedSet(); !got[1] || got[2] {
		t.Errorf("accepted = %v, want [1]", sol.Accepted)
	}
	if math.Abs(sol.Cost-(0.64+0.2)) > 1e-9 {
		t.Errorf("cost = %v, want 0.84", sol.Cost)
	}
}

func TestNewInstanceRejectsInvalid(t *testing.T) {
	if _, err := NewInstance(TaskSet{}, IdealProcessor(1)); err == nil {
		t.Error("empty deadline accepted")
	}
	set := TaskSet{Deadline: 10, Tasks: []Task{{ID: 1, Cycles: 4}}}
	if _, err := NewInstance(set, Processor{}); err == nil {
		t.Error("zero processor accepted")
	}
}

func TestXScaleProcessorFlavours(t *testing.T) {
	cont := XScaleProcessor(false, -1)
	if cont.Levels != nil || cont.DormantEnable {
		t.Errorf("continuous dormant-disable expected, got %+v", cont)
	}
	disc := XScaleProcessor(true, 0.5)
	if disc.Levels == nil || !disc.DormantEnable || disc.Esw != 0.5 {
		t.Errorf("discrete dormant-enable expected, got %+v", disc)
	}
	if err := disc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolverByName(t *testing.T) {
	for _, name := range []string{"DP", "OPT", "GREEDY", "S-GREEDY", "ACCEPT-ALL", "REJECT-ALL", "RAND", "APPROX", "APPROX-V"} {
		s, err := SolverByName(name)
		if err != nil {
			t.Errorf("SolverByName(%q): %v", name, err)
			continue
		}
		if s == nil {
			t.Errorf("SolverByName(%q) = nil", name)
		}
	}
	if _, err := SolverByName("NOPE"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestStandardSolvers(t *testing.T) {
	ss := StandardSolvers(7, 0.25)
	if len(ss) != 6 {
		t.Fatalf("len = %d, want 6", len(ss))
	}
	set := TaskSet{Deadline: 10, Tasks: []Task{
		{ID: 1, Cycles: 3, Penalty: 1},
		{ID: 2, Cycles: 5, Penalty: 2},
		{ID: 3, Cycles: 6, Penalty: 0.5},
	}}
	in, err := NewInstance(set, IdealProcessor(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ss {
		if _, err := s.Solve(in); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestSolvePeriodicFacade(t *testing.T) {
	pi := PeriodicInstance{
		Tasks: PeriodicSet{Tasks: []PeriodicTask{
			{ID: 1, Cycles: 1, Period: 2, Penalty: 10},
			{ID: 2, Cycles: 2, Period: 5, Penalty: 10},
		}},
		Proc: IdealProcessor(1),
	}
	sol, err := SolvePeriodic(DP{}, pi)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Rejected) != 0 {
		t.Errorf("rejected = %v, want none at high penalties", sol.Rejected)
	}
}

func TestEvaluateFacade(t *testing.T) {
	set := TaskSet{Deadline: 10, Tasks: []Task{{ID: 1, Cycles: 5, Penalty: 2}}}
	in, err := NewInstance(set, IdealProcessor(1))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Evaluate(in, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Energy-1.25) > 1e-9 { // 5³/100
		t.Errorf("energy = %v, want 1.25", sol.Energy)
	}
}

func TestHardnessGadgetExported(t *testing.T) {
	ss := SubsetSum{Items: []int64{3, 5, 7}, Target: 8}
	in, err := ss.Reduce()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := (DP{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Decode(opt) {
		t.Error("3+5 = 8 not decoded as yes")
	}
}
