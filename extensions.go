package dvsreject

import (
	"dvsreject/internal/dormant"
	"dvsreject/internal/multiproc"
	"dvsreject/internal/online"
	"dvsreject/internal/reclaim"
	"dvsreject/internal/sched/edf"
	"dvsreject/internal/sched/yds"
)

// This file re-exports the extension subsystems (multiprocessor,
// online-arrival, slack-reclamation, procrastination) and the scheduler
// substrates through the public API, so downstream users are not blocked
// by the internal/ boundary. See DESIGN.md for what is paper scope versus
// clearly-labeled extension.

// Scheduler substrates.
type (
	// Job is one real-time job instance for the EDF simulator.
	Job = edf.Job
	// JobResult is one job's simulation outcome.
	JobResult = edf.JobResult
	// SimResult is an EDF simulation outcome (completions, misses, trace).
	SimResult = edf.Result
	// YDSSchedule is the optimal speed schedule for jobs with arbitrary
	// windows (Yao–Demers–Shenker).
	YDSSchedule = yds.Schedule
)

// SimulateEDF runs preemptive EDF over the jobs with the processor
// following the speed profile (see internal/sched/edf).
var SimulateEDF = edf.Simulate

// ComputeYDS computes the minimum-energy speed schedule for jobs with
// arbitrary release times and deadlines.
var ComputeYDS = yds.Compute

// Multiprocessor extension: partitioned-EDF rejection on M identical
// processors.
type (
	// MultiprocInstance is a multiprocessor rejection problem.
	MultiprocInstance = multiproc.Instance
	// MultiprocSolution is a partitioned admission decision.
	MultiprocSolution = multiproc.Solution
	// LTFReject is the constructive partition+admission heuristic.
	LTFReject = multiproc.LTFReject
	// LTFRejectLS adds move/migrate/swap/exchange local search.
	LTFRejectLS = multiproc.LTFRejectLS
	// MultiprocExhaustive is the exact partitioned reference (tiny n).
	MultiprocExhaustive = multiproc.Exhaustive
)

// Online-arrival extension: irrevocable admission at arrival time over
// Optimal-Available (YDS re-planning) execution.
type (
	// OnlineJob is one aperiodic job with arrival, deadline and penalty.
	OnlineJob = online.Job
	// OnlinePolicy decides admissions at arrival instants.
	OnlinePolicy = online.Policy
	// OnlineResult is an online run's outcome.
	OnlineResult = online.Result
	// MarginalCostPolicy admits iff planned energy increase < penalty.
	MarginalCostPolicy = online.MarginalCost
	// AdmitFeasiblePolicy admits whenever smax permits.
	AdmitFeasiblePolicy = online.AdmitFeasible
)

// SimulateOnline runs the online event loop under a policy.
var SimulateOnline = online.Simulate

// OfflineOptimal is the clairvoyant reference for online runs.
var OfflineOptimal = online.OfflineOptimal

// Slack-reclamation extension: run-time cycles below WCET.
type (
	// ReclaimTask pairs a worst-case budget with actual usage.
	ReclaimTask = reclaim.Task
	// ReclaimPolicy selects Static, CycleConserving or Oracle execution.
	ReclaimPolicy = reclaim.Policy
	// ReclaimTrace is a frame execution trace under one policy.
	ReclaimTrace = reclaim.Trace
)

// Reclamation policies.
const (
	ReclaimStatic          = reclaim.Static
	ReclaimCycleConserving = reclaim.CycleConserving
	ReclaimOracle          = reclaim.Oracle
)

// RunReclaim executes admitted tasks within one frame under a policy.
var RunReclaim = reclaim.Run

// Procrastination extension: idle-gap analysis and ALAP consolidation.
type (
	// IdleAnalysis prices the idle gaps of a schedule.
	IdleAnalysis = dormant.Analysis
	// ExecMode selects eager (ASAP) or procrastinated (ALAP) execution.
	ExecMode = dormant.Mode
)

// Execution modes.
const (
	ExecASAP = dormant.ASAP
	ExecALAP = dormant.ALAP
)

// CompareIdleModes analyzes ASAP vs ALAP idle energy for a job set at a
// constant speed.
var CompareIdleModes = dormant.Compare
